#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace nsdc {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();
};

TEST_F(NetlistTest, BuildSmallChain) {
  GateNetlist nl("chain");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx2"),
                             {nl.cell(g1).out_net}, "w2");
  nl.mark_primary_output(nl.cell(g2).out_net);
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.depth(), 2);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDeps) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int b = nl.add_primary_input("b");
  const int g1 = nl.add_cell("u1", lib.by_name("NAND2x1"), {a, b}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx1"),
                             {nl.cell(g1).out_net}, "w2");
  const int g3 = nl.add_cell("u3", lib.by_name("NAND2x1"),
                             {nl.cell(g1).out_net, nl.cell(g2).out_net}, "w3");
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> pos(3);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  EXPECT_LT(pos[static_cast<std::size_t>(g1)], pos[static_cast<std::size_t>(g2)]);
  EXPECT_LT(pos[static_cast<std::size_t>(g2)], pos[static_cast<std::size_t>(g3)]);
}

TEST_F(NetlistTest, ArityMismatchThrows) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  EXPECT_THROW(nl.add_cell("u1", lib.by_name("NAND2x1"), {a}, "w1"),
               std::invalid_argument);
}

TEST_F(NetlistTest, BadFaninThrows) {
  GateNetlist nl("d");
  EXPECT_THROW(nl.add_cell("u1", lib.by_name("INVx1"), {42}, "w1"),
               std::out_of_range);
}

TEST_F(NetlistTest, NetPinCapSumsSinks) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  nl.add_cell("u2", lib.by_name("INVx4"), {a}, "w2");
  const double expected = lib.by_name("INVx1").input_cap(tech, 0) +
                          lib.by_name("INVx4").input_cap(tech, 0);
  EXPECT_NEAR(nl.net_pin_cap(a, tech), expected, 1e-21);
}

TEST_F(NetlistTest, FindNetByName) {
  GateNetlist nl("d");
  nl.add_primary_input("alpha");
  EXPECT_EQ(nl.find_net("alpha"), 0);
  EXPECT_EQ(nl.find_net("nope"), -1);
}

TEST_F(NetlistTest, SetCellTypeResizes) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w");
  nl.set_cell_type(g, lib.by_name("INVx8"));
  EXPECT_EQ(nl.cell(g).type->strength(), 8);
  EXPECT_THROW(nl.set_cell_type(g, lib.by_name("NAND2x1")),
               std::invalid_argument);
}

TEST_F(NetlistTest, DanglingNetsHaveNoSinks) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w");
  EXPECT_TRUE(nl.net(nl.cell(g).out_net).sinks.empty());
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].cell, g);
  EXPECT_EQ(nl.net(a).sinks[0].pin, 0);
}

TEST_F(NetlistTest, MultiSinkFanout) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  for (int i = 0; i < 5; ++i) {
    nl.add_cell("u" + std::to_string(i), lib.by_name("INVx1"), {a},
                "w" + std::to_string(i));
  }
  EXPECT_EQ(nl.net(a).sinks.size(), 5u);
}

TEST_F(NetlistTest, DepthOfParallelStructure) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx1"), {a}, "w2");
  nl.add_cell("u3", lib.by_name("NAND2x1"),
              {nl.cell(g1).out_net, nl.cell(g2).out_net}, "w3");
  EXPECT_EQ(nl.depth(), 2);
}

}  // namespace
}  // namespace nsdc
