#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/designgen.hpp"

namespace nsdc {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();
};

TEST_F(NetlistTest, BuildSmallChain) {
  GateNetlist nl("chain");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx2"),
                             {nl.cell(g1).out_net}, "w2");
  nl.mark_primary_output(nl.cell(g2).out_net);
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.depth(), 2);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDeps) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int b = nl.add_primary_input("b");
  const int g1 = nl.add_cell("u1", lib.by_name("NAND2x1"), {a, b}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx1"),
                             {nl.cell(g1).out_net}, "w2");
  const int g3 = nl.add_cell("u3", lib.by_name("NAND2x1"),
                             {nl.cell(g1).out_net, nl.cell(g2).out_net}, "w3");
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> pos(3);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  EXPECT_LT(pos[static_cast<std::size_t>(g1)], pos[static_cast<std::size_t>(g2)]);
  EXPECT_LT(pos[static_cast<std::size_t>(g2)], pos[static_cast<std::size_t>(g3)]);
}

TEST_F(NetlistTest, ArityMismatchThrows) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  EXPECT_THROW(nl.add_cell("u1", lib.by_name("NAND2x1"), {a}, "w1"),
               std::invalid_argument);
}

TEST_F(NetlistTest, BadFaninThrows) {
  GateNetlist nl("d");
  EXPECT_THROW(nl.add_cell("u1", lib.by_name("INVx1"), {42}, "w1"),
               std::out_of_range);
}

TEST_F(NetlistTest, NetPinCapSumsSinks) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  nl.add_cell("u2", lib.by_name("INVx4"), {a}, "w2");
  const double expected = lib.by_name("INVx1").input_cap(tech, 0) +
                          lib.by_name("INVx4").input_cap(tech, 0);
  EXPECT_NEAR(nl.net_pin_cap(a, tech), expected, 1e-21);
}

TEST_F(NetlistTest, FindNetByName) {
  GateNetlist nl("d");
  nl.add_primary_input("alpha");
  EXPECT_EQ(nl.find_net("alpha"), 0);
  EXPECT_EQ(nl.find_net("nope"), -1);
}

TEST_F(NetlistTest, SetCellTypeResizes) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w");
  nl.set_cell_type(g, lib.by_name("INVx8"));
  EXPECT_EQ(nl.cell(g).type->strength(), 8);
  EXPECT_THROW(nl.set_cell_type(g, lib.by_name("NAND2x1")),
               std::invalid_argument);
}

TEST_F(NetlistTest, DanglingNetsHaveNoSinks) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w");
  EXPECT_TRUE(nl.net(nl.cell(g).out_net).sinks.empty());
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].cell, g);
  EXPECT_EQ(nl.net(a).sinks[0].pin, 0);
}

TEST_F(NetlistTest, MultiSinkFanout) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  for (int i = 0; i < 5; ++i) {
    nl.add_cell("u" + std::to_string(i), lib.by_name("INVx1"), {a},
                "w" + std::to_string(i));
  }
  EXPECT_EQ(nl.net(a).sinks.size(), 5u);
}

TEST_F(NetlistTest, DepthOfParallelStructure) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx1"), {a}, "w2");
  nl.add_cell("u3", lib.by_name("NAND2x1"),
              {nl.cell(g1).out_net, nl.cell(g2).out_net}, "w3");
  EXPECT_EQ(nl.depth(), 2);
}

// ------------------------------------------------------- levelization ----

// The parallel STA engine schedules whole levels concurrently, so the
// levelization must satisfy: (1) every cell's level is strictly greater
// than the level of every fanin driver, (2) flattening the levels in order
// yields a valid topological order covering each cell exactly once. Checked
// here on randomized generated designs of several shapes.
class LevelizationPropertyTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();

  void check_levelization(const GateNetlist& nl) {
    const auto& lev = nl.levelization();
    ASSERT_EQ(lev.cell_level.size(), nl.num_cells());
    EXPECT_EQ(static_cast<int>(lev.levels.size()), nl.depth());

    // (1) Strict dominance over fanin levels; PI-only cells sit at level 0.
    for (std::size_t c = 0; c < nl.num_cells(); ++c) {
      const int cl = lev.cell_level[c];
      ASSERT_GE(cl, 0) << "cell " << c;
      ASSERT_LT(cl, static_cast<int>(lev.levels.size()));
      int max_fanin = -1;
      for (const int fn : nl.cell(static_cast<int>(c)).fanin_nets) {
        const int driver = nl.net(fn).driver_cell;
        if (driver >= 0) {
          EXPECT_GT(cl, lev.cell_level[static_cast<std::size_t>(driver)])
              << "cell " << c << " not above fanin driver " << driver;
          max_fanin = std::max(
              max_fanin, lev.cell_level[static_cast<std::size_t>(driver)]);
        }
      }
      // Levels are tight: exactly one above the deepest fanin.
      EXPECT_EQ(cl, max_fanin + 1) << "cell " << c;
    }

    // (2) The flattened schedule is a topological order over all cells.
    std::vector<char> placed(nl.num_cells(), 0);
    std::size_t scheduled = 0;
    for (std::size_t l = 0; l < lev.levels.size(); ++l) {
      EXPECT_FALSE(lev.levels[l].empty()) << "empty level " << l;
      for (const int c : lev.levels[l]) {
        EXPECT_EQ(lev.cell_level[static_cast<std::size_t>(c)],
                  static_cast<int>(l));
        EXPECT_FALSE(placed[static_cast<std::size_t>(c)])
            << "cell " << c << " scheduled twice";
        for (const int fn : nl.cell(c).fanin_nets) {
          const int driver = nl.net(fn).driver_cell;
          if (driver >= 0) {
            EXPECT_TRUE(placed[static_cast<std::size_t>(driver)])
                << "cell " << c << " scheduled before fanin " << driver;
          }
        }
        placed[static_cast<std::size_t>(c)] = 1;
        ++scheduled;
      }
    }
    EXPECT_EQ(scheduled, nl.num_cells());
  }
};

TEST_F(LevelizationPropertyTest, RandomMappedDesigns) {
  for (const std::uint64_t seed : {11u, 29u, 303u}) {
    RandomNetlistSpec spec;
    spec.name = "rand" + std::to_string(seed);
    spec.target_cells = 400;
    spec.seed = seed;
    GateNetlist nl = generate_random_mapped(spec, lib);
    SCOPED_TRACE("seed " + std::to_string(seed));
    check_levelization(nl);
  }
}

TEST_F(LevelizationPropertyTest, StructuralArithmeticUnits) {
  {
    SCOPED_TRACE("MUL");
    check_levelization(generate_array_multiplier(5, lib));
  }
  {
    SCOPED_TRACE("ADD");
    check_levelization(generate_ripple_adder(16, lib));
  }
  {
    SCOPED_TRACE("DIV");
    check_levelization(generate_array_divider(4, lib));
  }
}

TEST_F(LevelizationPropertyTest, SurvivesBufferingAndSizing) {
  RandomNetlistSpec spec;
  spec.target_cells = 300;
  spec.seed = 5;
  GateNetlist nl = generate_random_mapped(spec, lib);
  check_levelization(nl);
  // Mutation (buffer insertion) must invalidate the cached levelization.
  const std::size_t before = nl.levelization().levels.size();
  finalize_design(nl, lib, tech);
  check_levelization(nl);
  EXPECT_GE(nl.levelization().levels.size(), before);
}

TEST_F(LevelizationPropertyTest, CacheInvalidatedByMutation) {
  GateNetlist nl("d");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", lib.by_name("INVx1"), {a}, "w1");
  EXPECT_EQ(nl.levelization().levels.size(), 1u);
  const int g2 =
      nl.add_cell("u2", lib.by_name("INVx1"), {nl.cell(g1).out_net}, "w2");
  ASSERT_EQ(nl.levelization().levels.size(), 2u);
  EXPECT_EQ(nl.levelization().cell_level[static_cast<std::size_t>(g2)], 1);
}

TEST_F(LevelizationPropertyTest, MatchesTopologicalOrderPositions) {
  RandomNetlistSpec spec;
  spec.target_cells = 250;
  spec.seed = 77;
  const GateNetlist nl = generate_random_mapped(spec, lib);
  const auto order = nl.topological_order();
  const auto& lev = nl.levelization();
  // Levels must be monotonically non-decreasing along any topological
  // order's dependency edges; spot-check via positions.
  std::vector<int> pos(nl.num_cells(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    for (const int fn : nl.cell(static_cast<int>(c)).fanin_nets) {
      const int d = nl.net(fn).driver_cell;
      if (d >= 0) {
        EXPECT_LT(pos[static_cast<std::size_t>(d)],
                  pos[c]);
        EXPECT_LT(lev.cell_level[static_cast<std::size_t>(d)],
                  lev.cell_level[c]);
      }
    }
  }
}

}  // namespace
}  // namespace nsdc
