// Golden-file regression for the STA engine: full analysis of ISCAS85 C17
// (data/c17.bench) against a checked-in per-net arrival/slew/load CSV, so
// engine refactors (levelization, parallelization, delay-model changes)
// cannot silently drift the numbers. Regenerate the golden after an
// *intentional* model change with:
//   NSDC_REGEN_GOLDEN=1 ./tests/test_golden_sta
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/benchio.hpp"
#include "netlist/verilogio.hpp"
#include "sta/annotate.hpp"
#include "sta/engine.hpp"
#include "sta/sdf.hpp"
#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

std::string repo_path(const std::string& rel) {
  return std::string(NSDC_SOURCE_DIR) + "/" + rel;
}

struct GoldenRow {
  double arrival_rise = 0.0;
  double arrival_fall = 0.0;
  double slew_rise = 0.0;
  double slew_fall = 0.0;
  double load = 0.0;
};

std::map<std::string, GoldenRow> load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("missing golden file: " + path);
  std::map<std::string, GoldenRow> rows;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string net, field;
    std::getline(ss, net, ',');
    GoldenRow r;
    std::getline(ss, field, ',');
    r.arrival_rise = std::stod(field);
    std::getline(ss, field, ',');
    r.arrival_fall = std::stod(field);
    std::getline(ss, field, ',');
    r.slew_rise = std::stod(field);
    std::getline(ss, field, ',');
    r.slew_fall = std::stod(field);
    std::getline(ss, field, ',');
    r.load = std::stod(field);
    rows[net] = r;
  }
  return rows;
}

class GoldenStaTest : public ::testing::Test {
 protected:
  GoldenStaTest()
      : charlib(testfix::make_charlib()),
        cells(CellLibrary::standard()),
        model(NSigmaCellModel::fit(charlib)),
        tech(TechParams::nominal28()) {}

  /// Deterministic full analysis: fixed netlist, seeded parasitics.
  StaEngine::Result analyze(const GateNetlist& nl) const {
    const ParasiticDb spef = generate_parasitics(nl, tech);
    const StaEngine engine(model, tech);
    return engine.run(nl, spef);
  }

  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel model;
  TechParams tech;
};

TEST_F(GoldenStaTest, C17MatchesGoldenCsv) {
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), cells);
  ASSERT_EQ(nl.num_cells(), 6u);
  const auto res = analyze(nl);

  const std::string golden_path = repo_path("data/c17_golden_sta.csv");
  if (std::getenv("NSDC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good());
    out << "net,arrival_rise,arrival_fall,slew_rise,slew_fall,load\n";
    char buf[256];
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      const auto& nt = res.nets[n];
      std::snprintf(buf, sizeof(buf),
                    "%s,%.12e,%.12e,%.12e,%.12e,%.12e\n",
                    nl.net(static_cast<int>(n)).name.c_str(), nt.arrival[0],
                    nt.arrival[1], nt.slew[0], nt.slew[1], res.net_load[n]);
      out << buf;
    }
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  const auto golden = load_golden(golden_path);
  ASSERT_EQ(golden.size(), nl.num_nets());
  // 12 significant digits in the CSV: compare at 1e-9 relative, which any
  // arithmetic reordering (let alone a real model drift) would violate.
  const double rtol = 1e-9;
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    const std::string& name = nl.net(static_cast<int>(n)).name;
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "net " << name << " missing from golden";
    const auto& g = it->second;
    const auto& nt = res.nets[n];
    EXPECT_NEAR(nt.arrival[0], g.arrival_rise, rtol * g.arrival_rise + 1e-18)
        << name;
    EXPECT_NEAR(nt.arrival[1], g.arrival_fall, rtol * g.arrival_fall + 1e-18)
        << name;
    EXPECT_NEAR(nt.slew[0], g.slew_rise, rtol * g.slew_rise + 1e-18) << name;
    EXPECT_NEAR(nt.slew[1], g.slew_fall, rtol * g.slew_fall + 1e-18) << name;
    EXPECT_NEAR(res.net_load[n], g.load, rtol * g.load + 1e-24) << name;
  }
}

TEST_F(GoldenStaTest, C17VerilogAgreesWithBench) {
  // The same design through the Verilog reader (c17.v was written by this
  // library) must time identically net-for-net.
  const GateNetlist from_bench =
      load_bench(repo_path("data/c17.bench"), cells);
  const GateNetlist from_verilog = load_verilog(repo_path("c17.v"), cells);
  ASSERT_EQ(from_verilog.num_cells(), from_bench.num_cells());
  ASSERT_EQ(from_verilog.num_nets(), from_bench.num_nets());

  const auto res_b = analyze(from_bench);
  const auto res_v = analyze(from_verilog);
  for (std::size_t n = 0; n < from_bench.num_nets(); ++n) {
    const std::string& name = from_bench.net(static_cast<int>(n)).name;
    const int vn = from_verilog.find_net(name);
    ASSERT_GE(vn, 0) << name;
    const auto& b = res_b.nets[n];
    const auto& v = res_v.nets[static_cast<std::size_t>(vn)];
    EXPECT_EQ(b.arrival[0], v.arrival[0]) << name;
    EXPECT_EQ(b.arrival[1], v.arrival[1]) << name;
    EXPECT_EQ(b.slew[0], v.slew[0]) << name;
    EXPECT_EQ(b.slew[1], v.slew[1]) << name;
  }
}

TEST_F(GoldenStaTest, C17SdfExportCoversEveryInstance) {
  // The checked-in c17.sdf documents the export format; re-exporting must
  // produce an annotation covering the same instances and arcs.
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), cells);
  const ParasiticDb spef = generate_parasitics(nl, tech);
  const NSigmaWireModel wire_model = NSigmaWireModel::fit(charlib, cells);
  const std::string sdf = write_sdf(nl, spef, model, wire_model, tech);
  EXPECT_NE(sdf.find("(DESIGN \"c17\")"), std::string::npos);
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    EXPECT_NE(sdf.find("(INSTANCE " + nl.cell(static_cast<int>(c)).name + ")"),
              std::string::npos)
        << nl.cell(static_cast<int>(c)).name;
  }
  EXPECT_NE(sdf.find("IOPATH A0 Z"), std::string::npos);
  EXPECT_NE(sdf.find("INTERCONNECT"), std::string::npos);

  std::ifstream checked_in(repo_path("c17.sdf"));
  ASSERT_TRUE(checked_in.good()) << "checked-in c17.sdf missing";
  std::stringstream ss;
  ss << checked_in.rdbuf();
  // Same instance set as the checked-in annotation.
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    EXPECT_NE(ss.str().find("(INSTANCE " + nl.cell(static_cast<int>(c)).name +
                            ")"),
              std::string::npos)
        << nl.cell(static_cast<int>(c)).name;
  }
}

}  // namespace
}  // namespace nsdc
