#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cellmodels.hpp"
#include "baselines/corner_sta.hpp"
#include "baselines/correction.hpp"
#include "baselines/ml_wire.hpp"
#include "stats/quantiles.hpp"
#include "synthetic_charlib.hpp"
#include "util/rng.hpp"

namespace nsdc {
namespace {

using testfix::make_charlib;

std::vector<double> skewed_samples(int n, std::uint64_t seed) {
  // Lognormal-ish, the shape near-threshold delay takes.
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    xs.push_back(20e-12 * std::exp(rng.normal(0.0, 0.35)));
  }
  return xs;
}

TEST(CellModels, GaussianFitsGaussianData) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal(50e-12, 5e-12));
  GaussianDelayModel m;
  m.fit(xs);
  const auto q = m.sigma_level_quantiles();
  EXPECT_NEAR(q[3], 50e-12, 0.2e-12);
  EXPECT_NEAR(q[6], 65e-12, 0.5e-12);
}

TEST(CellModels, LsnBeatsGaussianOnSkewedTail) {
  const auto xs = skewed_samples(120000, 2);
  const auto truth = sigma_quantiles(xs);
  LsnDelayModel lsn;
  GaussianDelayModel gauss;
  lsn.fit(xs);
  gauss.fit(xs);
  const double e_lsn = std::fabs(lsn.sigma_level_quantiles()[6] - truth[6]);
  const double e_gauss = std::fabs(gauss.sigma_level_quantiles()[6] - truth[6]);
  EXPECT_LT(e_lsn, e_gauss);
  EXPECT_LT(e_lsn / truth[6], 0.05);  // LSN is a good model for lognormal
}

TEST(CellModels, BurrFitsItsOwnFamily) {
  BurrXII truth{3.0, 2.0, 30e-12, 10e-12};
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(truth.sample(rng));
  BurrDelayModel m;
  m.fit(xs);
  const auto emp = sigma_quantiles(xs);
  const auto q = m.sigma_level_quantiles();
  EXPECT_NEAR(q[3], emp[3], 0.05 * emp[3]);
  EXPECT_NEAR(q[5], emp[5], 0.10 * emp[5]);
}

TEST(CellModels, NamesAreStable) {
  EXPECT_EQ(GaussianDelayModel().name(), "Gaussian");
  EXPECT_EQ(LsnDelayModel().name(), "LSN");
  EXPECT_EQ(BurrDelayModel().name(), "Burr");
}

class BaselinePathTest : public ::testing::Test {
 protected:
  BaselinePathTest()
      : charlib(make_charlib()),
        cells(CellLibrary::standard()),
        cell_model(NSigmaCellModel::fit(charlib)) {
    for (int i = 0; i < 4; ++i) {
      PathStage st;
      st.cell = &cells.by_name("INVx2");
      st.pin = 0;
      st.in_rising = true;
      st.input_slew = 60e-12;
      st.output_load = 2e-15;
      const int sink = st.wire.add_node(0, 300.0, 3e-15);
      st.wire.mark_sink(sink, "n:0");
      st.sink_node = sink;
      st.load_cell = "INVx2";
      path.stages.push_back(std::move(st));
    }
  }

  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel cell_model;
  PathDescription path;
};

TEST_F(BaselinePathTest, CornerStaIsPessimisticAtPlus3) {
  CornerSta pt(cell_model);
  const auto q = pt.path_quantiles(path);
  // Late corner above the statistical median by construction.
  EXPECT_GT(q[6], q[3]);
  EXPECT_LT(q[0], q[3]);
  // Derated corner sum exceeds the plain mu+3sigma sum.
  CornerStaConfig no_derate;
  no_derate.cell_derate_late = 1.0;
  no_derate.wire_derate_late = 1.0;
  CornerSta plain(cell_model, no_derate);
  EXPECT_GT(q[6], plain.path_quantiles(path)[6]);
}

TEST_F(BaselinePathTest, CornerStaLevelBounds) {
  CornerSta pt(cell_model);
  EXPECT_THROW(pt.path_delay(path, -1), std::out_of_range);
  EXPECT_THROW(pt.path_delay(path, 7), std::out_of_range);
}

TEST_F(BaselinePathTest, CorrectionFactorRange) {
  // D2M <= Elmore on RC trees, so rho lands in (0.3, 1.0].
  const double rho =
      CorrectionMethod::correction_factor(path.stages[0].wire, 1);
  EXPECT_GT(rho, 0.3);
  EXPECT_LE(rho, 1.0);
}

TEST_F(BaselinePathTest, CorrectionUsesGlobalVariability) {
  CorrectionMethod corr(cell_model, charlib);
  EXPECT_GT(corr.global_wire_variability(), 0.0);
  const auto q = corr.path_quantiles(path);
  EXPECT_GT(q[6], q[3]);
  EXPECT_GT(q[3], 0.0);
}

TEST_F(BaselinePathTest, MlWireSerializationRoundTrip) {
  // Hand-build a deterministic model via deserialize, then round-trip.
  std::string text = "nsdc_mlwire 1\n";
  for (int lv = 0; lv < 7; ++lv) {
    for (int i = 0; i < 10; ++i) text += (i ? " " : "") + std::to_string(lv + i);
    text += "\n";
  }
  const auto model = MlWireModel::deserialize(text);
  ASSERT_TRUE(model.has_value());
  const auto back = MlWireModel::deserialize(model->serialize());
  ASSERT_TRUE(back.has_value());
  const double p1 = model->predict(path.stages[0].wire, 1, "INVx2", "INVx2", 6);
  const double p2 = back->predict(path.stages[0].wire, 1, "INVx2", "INVx2", 6);
  EXPECT_DOUBLE_EQ(p1, p2);
  EXPECT_FALSE(MlWireModel::deserialize("garbage").has_value());
}

TEST_F(BaselinePathTest, MlFeaturesWellFormed) {
  const auto f = MlWireModel::features(path.stages[0].wire, 1, "INVx4",
                                       "NAND2x2");
  ASSERT_EQ(f.size(), 10u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);            // intercept
  EXPECT_GT(f[1], 0.0);                   // Elmore in ps
  EXPECT_DOUBLE_EQ(f[7], 4.0);            // driver strength
  EXPECT_NEAR(f[8], 0.5, 1e-12);          // 1/sqrt(strength)
  EXPECT_DOUBLE_EQ(f[9], 2.0);            // load strength
}

TEST_F(BaselinePathTest, PathMlComposesCellAndWire) {
  std::string text = "nsdc_mlwire 1\n";
  for (int lv = 0; lv < 7; ++lv) {
    // Predict exactly 1 ps per wire regardless of features.
    text += "1 0 0 0 0 0 0 0 0 0\n";
  }
  const auto ml = MlWireModel::deserialize(text);
  ASSERT_TRUE(ml.has_value());
  PathMlCalculator calc(cell_model, *ml);
  const auto q = calc.path_quantiles(path);
  // Gaussian LUT part: sum of mu + n*sigma; wires add 4 x 1 ps.
  double expect_med = 0.0;
  for (const auto& st : path.stages) {
    expect_med += cell_model
                      .moments(st.cell->name(), st.pin, st.in_rising,
                               st.input_slew, st.output_load)
                      .mu;
  }
  EXPECT_NEAR(q[3], expect_med + 4e-12, 1e-18);
}

}  // namespace
}  // namespace nsdc
