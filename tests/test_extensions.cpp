// Tests for the paper-mentioned extensions: arbitrary/±6-sigma quantile
// levels and the Liberty/LVF exporter.
#include <gtest/gtest.h>

#include "core/pathdelay.hpp"
#include "liberty/libwriter.hpp"
#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

using testfix::make_charlib;

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest()
      : charlib(make_charlib()),
        cells(CellLibrary::standard()),
        cell_model(NSigmaCellModel::fit(charlib)),
        wire_model(NSigmaWireModel::fit(charlib, cells)) {}

  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel cell_model;
  NSigmaWireModel wire_model;
};

TEST_F(ExtensionTest, QuantileAtMatchesIntegerLevels) {
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 0.9;
  m.kappa = 1.3;
  const auto q = cell_model.table1().quantiles(m);
  for (int lv = 0; lv < 7; ++lv) {
    EXPECT_NEAR(cell_model.table1().quantile_at(m, lv - 3),
                q[static_cast<std::size_t>(lv)], 1e-20)
        << "level " << lv - 3;
  }
}

TEST_F(ExtensionTest, QuantileAtGaussianReduction) {
  Moments m;
  m.mu = 50e-12;
  m.sigma = 5e-12;
  for (double n : {-6.0, -4.5, -1.3, 0.0, 2.7, 4.0, 6.0}) {
    EXPECT_NEAR(cell_model.table1().quantile_at(m, n), m.mu + n * m.sigma,
                1e-20)
        << n;
  }
}

TEST_F(ExtensionTest, QuantileAtMonotoneForModerateShape) {
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 1.0;
  m.kappa = 1.5;
  // Non-decreasing everywhere (the deep negative levels may sit on the
  // 1%-of-mu extrapolation floor), strictly increasing within +-3.
  double prev = cell_model.table1().quantile_at(m, -6.0);
  for (double n = -5.75; n <= 6.0; n += 0.25) {
    const double q = cell_model.table1().quantile_at(m, n);
    EXPECT_GE(q, prev) << "n=" << n;
    if (n > -3.0) EXPECT_GT(q, prev) << "n=" << n;
    prev = q;
  }
}

TEST_F(ExtensionTest, QuantileAtClampsBeyondSix) {
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 0.5;
  EXPECT_DOUBLE_EQ(cell_model.table1().quantile_at(m, 9.0),
                   cell_model.table1().quantile_at(m, 6.0));
  EXPECT_DOUBLE_EQ(cell_model.table1().quantile_at(m, -9.0),
                   cell_model.table1().quantile_at(m, -6.0));
}

TEST_F(ExtensionTest, SixSigmaTailWiderThanGaussianForSkewed) {
  // For right-skewed moments the +6s estimate must exceed mu + 6 sigma.
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 1.2;
  m.kappa = 2.0;
  EXPECT_GT(cell_model.table1().quantile_at(m, 6.0), m.mu + 6.0 * m.sigma);
  // ...and the -6s estimate stays above zero-ish physical floor concerns
  // are the caller's; here just check it is below mu - 3 sigma analog.
  EXPECT_LT(cell_model.table1().quantile_at(m, -6.0),
            cell_model.table1().quantile_at(m, -3.0));
}

TEST_F(ExtensionTest, WireQuantileAtContinuousAndGuarded) {
  EXPECT_NEAR(wire_model.quantile_at(10e-12, 0.1, 2.5),
              (1.0 + 0.25) * 10e-12, 1e-24);
  // Deep negative levels hit the 5% Elmore floor instead of going negative.
  EXPECT_NEAR(wire_model.quantile_at(10e-12, 0.3, -6.0), 0.5e-12, 1e-24);
}

TEST_F(ExtensionTest, PathQuantileAtMatchesIntegerSum) {
  PathDelayCalculator calc(cell_model, wire_model);
  PathDescription path;
  for (int i = 0; i < 3; ++i) {
    PathStage st;
    st.cell = &cells.by_name("INVx2");
    st.pin = 0;
    st.in_rising = true;
    st.input_slew = 60e-12;
    st.output_load = 2e-15;
    const int sink = st.wire.add_node(0, 200.0, 2e-15);
    st.wire.mark_sink(sink, "n:0");
    st.sink_node = sink;
    st.load_cell = "INVx2";
    path.stages.push_back(std::move(st));
  }
  const auto q = calc.path_quantiles(path);
  for (int lv = 0; lv < 7; ++lv) {
    EXPECT_NEAR(calc.path_quantile_at(path, lv - 3),
                q[static_cast<std::size_t>(lv)], 1e-18);
  }
  // The 6-sigma extension continues past the integer grid monotonically.
  EXPECT_GT(calc.path_quantile_at(path, 4.0), q[6]);
  EXPECT_GT(calc.path_quantile_at(path, 6.0),
            calc.path_quantile_at(path, 4.0));
}

TEST_F(ExtensionTest, LibertyExportStructure) {
  const std::string lib = write_liberty(charlib, cells, "nsdc_28n_0p6v");
  EXPECT_NE(lib.find("library (nsdc_28n_0p6v)"), std::string::npos);
  EXPECT_NE(lib.find("cell (INVx1)"), std::string::npos);
  EXPECT_NE(lib.find("cell_rise"), std::string::npos);
  EXPECT_NE(lib.find("rise_transition"), std::string::npos);
  EXPECT_NE(lib.find("ocv_sigma_cell_rise"), std::string::npos);
  EXPECT_NE(lib.find("ocv_skewness_cell_fall"), std::string::npos);
  EXPECT_NE(lib.find("timing_sense : negative_unate"), std::string::npos);
  // Pin caps present with a plausible magnitude.
  EXPECT_NE(lib.find("capacitance : 0."), std::string::npos);
  // Uncharacterized cells (e.g. OAI21 in the synthetic fixture) skipped.
  EXPECT_EQ(lib.find("cell (OAI21x1)"), std::string::npos);
}

TEST_F(ExtensionTest, LibertySaveToFile) {
  const std::string path = ::testing::TempDir() + "nsdc_test.lib";
  EXPECT_TRUE(save_liberty(charlib, cells, "x", path));
  EXPECT_FALSE(save_liberty(charlib, cells, "x", "/nonexistent/dir/x.lib"));
}

}  // namespace
}  // namespace nsdc
