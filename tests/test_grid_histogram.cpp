#include <gtest/gtest.h>

#include <vector>

#include "stats/grid.hpp"
#include "stats/histogram.hpp"

namespace nsdc {
namespace {

Grid2D make_plane() {
  // f(x, y) = 2x + 3y + 1 sampled on a 3x3 grid — bilinear interpolation
  // must be exact everywhere inside.
  std::vector<double> xs{0.0, 1.0, 2.0};
  std::vector<double> ys{0.0, 10.0, 20.0};
  std::vector<double> vals;
  for (double x : xs) {
    for (double y : ys) vals.push_back(2.0 * x + 3.0 * y + 1.0);
  }
  return Grid2D(xs, ys, vals);
}

TEST(Grid2D, ExactAtNodes) {
  const Grid2D g = make_plane();
  EXPECT_DOUBLE_EQ(g.lookup(1.0, 10.0), 2.0 + 30.0 + 1.0);
  EXPECT_DOUBLE_EQ(g.lookup(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(g.lookup(2.0, 20.0), 4.0 + 60.0 + 1.0);
}

TEST(Grid2D, ExactInsideCells) {
  const Grid2D g = make_plane();
  EXPECT_NEAR(g.lookup(0.5, 5.0), 2.0 * 0.5 + 3.0 * 5.0 + 1.0, 1e-12);
  EXPECT_NEAR(g.lookup(1.7, 13.0), 2.0 * 1.7 + 3.0 * 13.0 + 1.0, 1e-12);
}

TEST(Grid2D, LinearExtrapolationBeyondEdges) {
  const Grid2D g = make_plane();
  // A plane extrapolates exactly under bilinear continuation.
  EXPECT_NEAR(g.lookup(3.0, 25.0), 2.0 * 3.0 + 3.0 * 25.0 + 1.0, 1e-12);
  EXPECT_NEAR(g.lookup(-1.0, -5.0), 2.0 * -1.0 + 3.0 * -5.0 + 1.0, 1e-12);
}

TEST(Grid2D, ValidatesInput) {
  EXPECT_THROW(Grid2D({0.0}, {0.0, 1.0}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(Grid2D({0.0, 1.0}, {0.0, 1.0}, {1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW(Grid2D({1.0, 0.0}, {0.0, 1.0}, {1, 2, 3, 4}),
               std::invalid_argument);
}

TEST(Grid2D, SetAndAt) {
  Grid2D g({0.0, 1.0}, {0.0, 1.0}, {0, 0, 0, 0});
  g.set(1, 0, 5.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.lookup(1.0, 0.0), 5.0);
}

TEST(Histogram, CountsAndTotal) {
  const std::vector<double> xs{0.0, 0.1, 0.2, 0.9, 1.0};
  Histogram h(xs, 2);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 3u);  // 0.0, 0.1, 0.2
  EXPECT_EQ(h.count(1), 2u);  // 0.9, 1.0 (max lands in last bin)
}

TEST(Histogram, BinGeometry) {
  const std::vector<double> xs{0.0, 4.0};
  Histogram h(xs, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 2.5);
}

TEST(Histogram, DensityNormalizes) {
  const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  Histogram h(xs, 4);
  double integral = 0.0;
  const double width = 2.0 / 4.0;
  for (std::size_t i = 0; i < h.num_bins(); ++i) integral += h.density(i) * width;
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(Histogram(xs, 4), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  const std::vector<double> xs{1.0, 1.0, 1.0, 2.0};
  Histogram h(xs, 2);
  const std::string s = h.render(10, 1.0, "u");
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('u'), std::string::npos);
}

}  // namespace
}  // namespace nsdc
