#include "netlist/benchio.hpp"

#include <gtest/gtest.h>

namespace nsdc {
namespace {

class BenchIoTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
};

TEST_F(BenchIoTest, ParseC17) {
  // The classic ISCAS85 C17 benchmark, verbatim.
  const std::string c17 = R"(
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  const GateNetlist nl = parse_bench(c17, lib, "c17");
  EXPECT_EQ(nl.num_cells(), 6u);
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.depth(), 3);
  for (const auto& cell : nl.cells()) {
    EXPECT_EQ(cell.type->name(), "NAND2x1");
  }
}

TEST_F(BenchIoTest, NotAndBuffMap) {
  const std::string text =
      "INPUT(a)\nOUTPUT(c)\nb = NOT(a)\nc = BUFF(b)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  ASSERT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.cell(0).type->func(), CellFunc::kInv);
  EXPECT_EQ(nl.cell(1).type->func(), CellFunc::kBuf);
}

TEST_F(BenchIoTest, AndGainsOutputInverter) {
  const std::string text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  EXPECT_EQ(nl.num_cells(), 2u);  // NAND2 + INV
}

TEST_F(BenchIoTest, MultiInputNandDecomposes) {
  const std::string text =
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = NAND(a, b, c, d)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  // Two pair-reduction NAND+INV plus the final NAND2: 5 cells.
  EXPECT_EQ(nl.num_cells(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

TEST_F(BenchIoTest, XorExpandsToFourNands) {
  const std::string text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  EXPECT_EQ(nl.num_cells(), 4u);
}

TEST_F(BenchIoTest, XnorAddsInverter) {
  const std::string text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  EXPECT_EQ(nl.num_cells(), 5u);
}

TEST_F(BenchIoTest, ExtendedCellNames) {
  const std::string text =
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AOI21x4(a, b, c)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  ASSERT_EQ(nl.num_cells(), 1u);
  EXPECT_EQ(nl.cell(0).type->name(), "AOI21x4");
}

TEST_F(BenchIoTest, OutOfOrderDefinitions) {
  const std::string text =
      "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NOT(a)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.depth(), 2);
}

TEST_F(BenchIoTest, RoundTripPreservesStructure) {
  const std::string text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
m = NAND2x2(a, b)
y = OAI21x1(a, m, c)
z = INVx8(m)
)";
  const GateNetlist nl = parse_bench(text, lib, "t");
  const std::string emitted = write_bench(nl);
  const GateNetlist back = parse_bench(emitted, lib, "t2");
  EXPECT_EQ(back.num_cells(), nl.num_cells());
  EXPECT_EQ(back.num_nets(), nl.num_nets());
  EXPECT_EQ(back.depth(), nl.depth());
  EXPECT_EQ(back.primary_outputs().size(), nl.primary_outputs().size());
}

TEST_F(BenchIoTest, ErrorsAreDescriptive) {
  EXPECT_THROW(parse_bench("y = NAND(a)\n", lib, "t"), std::runtime_error);
  EXPECT_THROW(parse_bench("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n", lib, "t"),
               std::runtime_error);
  // Undefined signal.
  EXPECT_THROW(parse_bench("OUTPUT(y)\ny = NOT(ghost)\n", lib, "t"),
               std::runtime_error);
  // Duplicate definition.
  EXPECT_THROW(
      parse_bench("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\nOUTPUT(y)\n", lib, "t"),
      std::runtime_error);
  // Combinational cycle.
  EXPECT_THROW(
      parse_bench("INPUT(a)\nx = NOT(y)\ny = NOT(x)\nOUTPUT(y)\n", lib, "t"),
      std::runtime_error);
}

TEST_F(BenchIoTest, CommentsAndBlanksIgnored) {
  const std::string text =
      "# header\n\nINPUT(a)  # trailing comment\n\nOUTPUT(y)\ny = NOT(a)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  EXPECT_EQ(nl.num_cells(), 1u);
}

TEST_F(BenchIoTest, SaveAndLoadFile) {
  const std::string text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  const GateNetlist nl = parse_bench(text, lib, "t");
  const std::string path = ::testing::TempDir() + "nsdc_bench_test.bench";
  ASSERT_TRUE(save_bench(nl, path));
  const GateNetlist back = load_bench(path, lib);
  EXPECT_EQ(back.num_cells(), 1u);
  EXPECT_EQ(back.name(), "nsdc_bench_test");
  EXPECT_THROW(load_bench("/nonexistent/x.bench", lib), std::runtime_error);
}

}  // namespace
}  // namespace nsdc
