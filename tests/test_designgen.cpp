#include "netlist/designgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nsdc {
namespace {

class DesignGenTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();
};

TEST_F(DesignGenTest, RandomMappedMatchesSpec) {
  RandomNetlistSpec spec;
  spec.name = "r1";
  spec.target_cells = 300;
  spec.num_primary_inputs = 20;
  spec.target_depth = 15;
  spec.seed = 5;
  const GateNetlist nl = generate_random_mapped(spec, lib);
  EXPECT_EQ(nl.num_cells(), 300u);
  EXPECT_EQ(nl.primary_inputs().size(), 20u);
  EXPECT_LE(nl.depth(), 15);
  EXPECT_GE(nl.depth(), 8);
  EXPECT_FALSE(nl.primary_outputs().empty());
  EXPECT_NO_THROW(nl.topological_order());
}

TEST_F(DesignGenTest, RandomMappedDeterministic) {
  RandomNetlistSpec spec;
  spec.target_cells = 100;
  spec.num_primary_inputs = 10;
  spec.target_depth = 10;
  spec.seed = 42;
  const GateNetlist a = generate_random_mapped(spec, lib);
  const GateNetlist b = generate_random_mapped(spec, lib);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_EQ(a.cell(static_cast<int>(i)).type->name(),
              b.cell(static_cast<int>(i)).type->name());
    EXPECT_EQ(a.cell(static_cast<int>(i)).fanin_nets,
              b.cell(static_cast<int>(i)).fanin_nets);
  }
}

TEST_F(DesignGenTest, RandomMappedSeedChangesStructure) {
  RandomNetlistSpec spec;
  spec.target_cells = 100;
  spec.num_primary_inputs = 10;
  spec.target_depth = 10;
  spec.seed = 1;
  const GateNetlist a = generate_random_mapped(spec, lib);
  spec.seed = 2;
  const GateNetlist b = generate_random_mapped(spec, lib);
  bool differs = false;
  for (std::size_t i = 0; i < a.num_cells() && !differs; ++i) {
    differs = a.cell(static_cast<int>(i)).fanin_nets !=
              b.cell(static_cast<int>(i)).fanin_nets;
  }
  EXPECT_TRUE(differs);
}

TEST_F(DesignGenTest, BadSpecThrows) {
  RandomNetlistSpec spec;
  spec.target_cells = 0;
  EXPECT_THROW(generate_random_mapped(spec, lib), std::invalid_argument);
}

TEST_F(DesignGenTest, Table3BenchmarkList) {
  const auto& stats = table3_benchmarks();
  EXPECT_EQ(stats.size(), 12u);
  const auto c432 = std::find_if(stats.begin(), stats.end(),
                                 [](const auto& s) { return s.name == "C432"; });
  ASSERT_NE(c432, stats.end());
  EXPECT_EQ(c432->cells, 655);
  EXPECT_EQ(c432->nets, 734);
}

TEST_F(DesignGenTest, IscasLikeMatchesPublishedCounts) {
  const GateNetlist nl = generate_iscas_like("C432", lib);
  EXPECT_EQ(nl.num_cells(), 655u);
  EXPECT_THROW(generate_iscas_like("C9999", lib), std::out_of_range);
}

TEST_F(DesignGenTest, RippleAdderStructure) {
  const GateNetlist nl = generate_ripple_adder(8, lib);
  // 9 NAND2 per full adder.
  EXPECT_EQ(nl.num_cells(), 8u * 9u);
  EXPECT_EQ(nl.primary_inputs().size(), 17u);  // 2*8 + cin
  EXPECT_EQ(nl.primary_outputs().size(), 9u);  // 8 sums + cout
  // Ripple carry: depth grows with width.
  EXPECT_GT(nl.depth(), 8);
}

TEST_F(DesignGenTest, SubtractorAddsInverters) {
  const GateNetlist add = generate_ripple_adder(8, lib);
  const GateNetlist sub = generate_subtractor(8, lib);
  EXPECT_EQ(sub.num_cells(), add.num_cells() + 8u);
}

TEST_F(DesignGenTest, MultiplierScalesQuadratically) {
  const GateNetlist m4 = generate_array_multiplier(4, lib);
  const GateNetlist m8 = generate_array_multiplier(8, lib);
  EXPECT_EQ(m4.primary_outputs().size(), 8u);
  EXPECT_EQ(m8.primary_outputs().size(), 16u);
  EXPECT_GT(m8.num_cells(), 3.3 * static_cast<double>(m4.num_cells()));
  EXPECT_NO_THROW(m8.topological_order());
}

TEST_F(DesignGenTest, DividerProducesQuotientAndRemainder) {
  const GateNetlist d = generate_array_divider(6, lib);
  EXPECT_EQ(d.primary_outputs().size(), 12u);  // 6 quotient + 6 remainder
  EXPECT_NO_THROW(d.topological_order());
  EXPECT_GT(d.depth(), 10);  // borrow/carry chains dominate
}

TEST_F(DesignGenTest, InsertBuffersCapsFanout) {
  RandomNetlistSpec spec;
  spec.target_cells = 400;
  spec.num_primary_inputs = 6;  // few PIs force big fanouts
  spec.target_depth = 10;
  spec.seed = 3;
  GateNetlist nl = generate_random_mapped(spec, lib);
  const int inserted = insert_buffers(nl, lib, 6);
  EXPECT_GT(inserted, 0);
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    EXPECT_LE(nl.net(static_cast<int>(n)).sinks.size(), 6u)
        << nl.net(static_cast<int>(n)).name;
  }
  EXPECT_NO_THROW(nl.topological_order());
}

TEST_F(DesignGenTest, InsertBuffersPreservesPortCounts) {
  RandomNetlistSpec spec;
  spec.target_cells = 200;
  spec.num_primary_inputs = 8;
  spec.target_depth = 8;
  spec.seed = 9;
  GateNetlist nl = generate_random_mapped(spec, lib);
  const auto pis = nl.primary_inputs().size();
  const auto pos = nl.primary_outputs().size();
  insert_buffers(nl, lib, 8);
  EXPECT_EQ(nl.primary_inputs().size(), pis);
  EXPECT_EQ(nl.primary_outputs().size(), pos);
}

TEST_F(DesignGenTest, SizeCellsUpsIzesLoadedGates) {
  GateNetlist nl("sz");
  const int a = nl.add_primary_input("a");
  const int drv = nl.add_cell("drv", lib.by_name("INVx1"), {a}, "w");
  // Eight heavy sinks on the driver's output.
  for (int i = 0; i < 8; ++i) {
    nl.add_cell("s" + std::to_string(i), lib.by_name("INVx8"),
                {nl.cell(drv).out_net}, "o" + std::to_string(i));
  }
  const int resizes = size_cells(nl, lib, tech);
  EXPECT_GT(resizes, 0);
  EXPECT_GT(nl.cell(drv).type->strength(), 1);
}

TEST_F(DesignGenTest, SizeCellsIsIdempotent) {
  RandomNetlistSpec spec;
  spec.target_cells = 150;
  spec.num_primary_inputs = 12;
  spec.target_depth = 10;
  spec.seed = 13;
  GateNetlist nl = generate_random_mapped(spec, lib);
  size_cells(nl, lib, tech);
  EXPECT_EQ(size_cells(nl, lib, tech), 0);  // fixed point reached
}

TEST_F(DesignGenTest, FinalizeKeepsValidity) {
  GateNetlist nl = generate_iscas_like("C1355", lib);
  finalize_design(nl, lib, tech);
  EXPECT_NO_THROW(nl.topological_order());
  EXPECT_GE(nl.num_cells(), 977u);  // buffers only add cells
}

class AdderWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidthSweep, CellCountFormula) {
  const CellLibrary lib2 = CellLibrary::standard();
  const int bits = GetParam();
  const GateNetlist nl = generate_ripple_adder(bits, lib2);
  EXPECT_EQ(nl.num_cells(), static_cast<std::size_t>(9 * bits));
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthSweep, ::testing::Values(1, 4, 16, 32));

}  // namespace
}  // namespace nsdc
