#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/quantiles.hpp"
#include "util/rng.hpp"

namespace nsdc {
namespace {

// ------------------------------------------------------------- Owen's T

TEST(OwensT, ZeroShape) { EXPECT_DOUBLE_EQ(owens_t(1.3, 0.0), 0.0); }

TEST(OwensT, ZeroH) {
  EXPECT_NEAR(owens_t(0.0, 1.0), std::atan(1.0) / (2.0 * std::numbers::pi),
              1e-12);
  EXPECT_NEAR(owens_t(0.0, -2.0), std::atan(-2.0) / (2.0 * std::numbers::pi),
              1e-12);
}

TEST(OwensT, KnownValue) {
  // T(h, 1) = Phi(h) * (1 - Phi(h)) / 2.
  for (double h : {0.1, 0.5, 1.0, 2.0}) {
    const double phi = normal_cdf(h);
    EXPECT_NEAR(owens_t(h, 1.0), 0.5 * phi * (1.0 - phi), 1e-10) << h;
  }
}

TEST(OwensT, OddInA) {
  EXPECT_NEAR(owens_t(0.7, 0.6), -owens_t(0.7, -0.6), 1e-13);
}

TEST(OwensT, LargeAReflection) {
  // Check |a| > 1 path against numerically-integrated small-a identity.
  const double t = owens_t(0.5, 3.0);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.25);
}

// --------------------------------------------------------------- Normal

TEST(NormalDist, Basics) {
  NormalDist d{2.0, 3.0};
  EXPECT_NEAR(d.cdf(2.0), 0.5, 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 2.0, 1e-9);
  EXPECT_NEAR(d.quantile(normal_cdf(1.0)), 5.0, 1e-6);
  EXPECT_NEAR(d.pdf(2.0), 1.0 / (3.0 * std::sqrt(2.0 * std::numbers::pi)),
              1e-12);
}

TEST(NormalDist, FitRecovers) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal(-4.0, 0.5));
  const NormalDist d = NormalDist::fit(xs);
  EXPECT_NEAR(d.mu, -4.0, 0.01);
  EXPECT_NEAR(d.sigma, 0.5, 0.01);
}

// ------------------------------------------------------------ SkewNormal

TEST(SkewNormal, ReducesToNormalAtAlphaZero) {
  SkewNormal sn{1.0, 2.0, 0.0};
  NormalDist n{1.0, 2.0};
  for (double x : {-3.0, 0.0, 1.0, 4.0}) {
    EXPECT_NEAR(sn.pdf(x), n.pdf(x), 1e-12);
    EXPECT_NEAR(sn.cdf(x), n.cdf(x), 1e-10);
  }
}

TEST(SkewNormal, CdfMonotoneAndBounded) {
  SkewNormal sn{0.0, 1.0, 3.0};
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double c = sn.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(SkewNormal, QuantileInvertsCdf) {
  SkewNormal sn{2.0, 1.5, -2.0};
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(sn.cdf(sn.quantile(p)), p, 1e-8) << p;
  }
}

TEST(SkewNormal, MomentFormulasMatchSamples) {
  SkewNormal sn{1.0, 2.0, 4.0};
  Rng rng(3);
  MomentAccumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(sn.sample(rng));
  const Moments m = acc.moments();
  EXPECT_NEAR(m.mu, sn.mean(), 0.01);
  EXPECT_NEAR(m.sigma, sn.stddev(), 0.01);
  EXPECT_NEAR(m.gamma, sn.skewness(), 0.03);
}

TEST(SkewNormal, FitRecoversShape) {
  SkewNormal truth{5.0, 3.0, 3.0};
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) xs.push_back(truth.sample(rng));
  const SkewNormal fit = SkewNormal::fit(xs);
  EXPECT_NEAR(fit.mean(), truth.mean(), 0.05);
  EXPECT_NEAR(fit.stddev(), truth.stddev(), 0.05);
  // Quantiles are the behaviourally relevant output.
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(fit.quantile(p), truth.quantile(p), 0.1) << p;
  }
}

TEST(SkewNormal, FromMomentsClampsExtremeSkew) {
  Moments m;
  m.mu = 0.0;
  m.sigma = 1.0;
  m.gamma = 5.0;  // beyond the SN-attainable range
  const SkewNormal sn = SkewNormal::from_moments(m);
  EXPECT_TRUE(std::isfinite(sn.alpha));
  EXPECT_GT(sn.omega, 0.0);
}

// --------------------------------------------------------- LogSkewNormal

TEST(LogSkewNormal, QuantileInvertsCdf) {
  LogSkewNormal lsn;
  lsn.log_model = {0.0, 0.5, 2.0};
  for (double p : {0.01, 0.3, 0.5, 0.97}) {
    EXPECT_NEAR(lsn.cdf(lsn.quantile(p)), p, 1e-8);
  }
}

TEST(LogSkewNormal, SupportIsPositive) {
  LogSkewNormal lsn;
  lsn.log_model = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(lsn.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lsn.pdf(-1.0), 0.0);
  EXPECT_GT(lsn.quantile(0.5), 0.0);
}

TEST(LogSkewNormal, FitLogNormalData) {
  // Lognormal samples: LSN with alpha ~ 0 should fit well.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(std::exp(rng.normal(1.0, 0.4)));
  const LogSkewNormal fit = LogSkewNormal::fit(xs);
  const auto q = sigma_quantiles(xs);
  EXPECT_NEAR(fit.quantile(0.5), q[3], 0.05 * q[3]);
  EXPECT_NEAR(fit.quantile(sigma_level_probability(2)), q[5], 0.05 * q[5]);
}

TEST(LogSkewNormal, FitRejectsNonpositive) {
  const std::vector<double> xs{1.0, -0.5, 2.0};
  EXPECT_THROW(LogSkewNormal::fit(xs), std::invalid_argument);
}

// ----------------------------------------------------------------- Burr

TEST(BurrXII, CdfQuantileRoundTrip) {
  BurrXII b{2.5, 1.5, 3.0, 1.0};
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(b.cdf(b.quantile(p)), p, 1e-10) << p;
  }
}

TEST(BurrXII, PdfIntegratesToCdf) {
  BurrXII b{3.0, 2.0, 1.0, 0.0};
  // Trapezoidal integration of the pdf vs cdf.
  double acc = 0.0;
  const double dx = 1e-3;
  for (double x = 0.0; x < 4.0; x += dx) {
    acc += 0.5 * (b.pdf(x) + b.pdf(x + dx)) * dx;
  }
  EXPECT_NEAR(acc, b.cdf(4.0), 1e-3);
}

TEST(BurrXII, RawMomentsAgainstSampling) {
  BurrXII b{4.0, 3.0, 2.0, 0.0};
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = b.sample(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, b.raw_moment(1), 0.01);
  EXPECT_NEAR(sum2 / n, b.raw_moment(2), 0.05);
}

TEST(BurrXII, MomentExistenceBoundary) {
  BurrXII b{1.0, 1.5, 1.0, 0.0};  // c*k = 1.5: only the sub-1.5 moments exist
  EXPECT_TRUE(std::isfinite(b.raw_moment(1)));
  EXPECT_TRUE(std::isnan(b.raw_moment(2)));
}

TEST(BurrXII, FitRecoversQuantilesOfBurrData) {
  BurrXII truth{3.5, 2.0, 5.0, 10.0};
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 150000; ++i) xs.push_back(truth.sample(rng));
  const BurrXII fit = BurrXII::fit(xs);
  const auto q = sigma_quantiles(xs);
  EXPECT_NEAR(fit.quantile(0.5), q[3], 0.05 * q[3]);
  EXPECT_NEAR(fit.quantile(sigma_level_probability(2)), q[5], 0.10 * q[5]);
}

TEST(BurrXII, QuantileDomainErrors) {
  BurrXII b;
  EXPECT_THROW(b.quantile(0.0), std::domain_error);
  EXPECT_THROW(b.quantile(1.0), std::domain_error);
}

class SkewNormalAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SkewNormalAlphaSweep, SamplingMatchesCdf) {
  const double alpha = GetParam();
  SkewNormal sn{0.0, 1.0, alpha};
  Rng rng(17);
  int below_median = 0;
  const int n = 40000;
  const double med = sn.quantile(0.5);
  for (int i = 0; i < n; ++i) below_median += sn.sample(rng) < med;
  EXPECT_NEAR(static_cast<double>(below_median) / n, 0.5, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Alphas, SkewNormalAlphaSweep,
                         ::testing::Values(-5.0, -1.0, 0.0, 0.5, 2.0, 8.0));

}  // namespace
}  // namespace nsdc
