// Static-analysis framework tests: interval-algebra soundness properties
// (every sampled engine value lies inside its static interval), SCC /
// cone structural facts, the charlib domain-coverage audit, cross-engine
// verification, thread-count byte-identity of the reports, the
// analyze.interval fault site, and the shared tool exit-code contract.
// Also holds the lint golden-JSON test (schema_version 2, diagnostics
// stable-sorted by rule/object/line). Regenerate the golden after an
// intentional schema change with:
//   NSDC_REGEN_GOLDEN=1 ./tests/test_analysis
#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "lint/lint.hpp"
#include "liberty/synthlib.hpp"
#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "stats/quantiles.hpp"
#include "synthetic_charlib.hpp"
#include "util/diag.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"

namespace nsdc {
namespace {

using analysis::Interval;
using analysis::MomentIntervals;

std::string repo_path(const std::string& rel) {
  return std::string(NSDC_SOURCE_DIR) + "/" + rel;
}

int count_rule(const AnalysisReport& report, const std::string& rule) {
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

/// Containment tolerance matching the kRangeGuard widening contract.
double tol_for(double v) { return 1e-15 + 1e-8 * std::abs(v); }

/// a -> INVx1(u0) -> n0 -> INVx1(u1) -> y.
GateNetlist inv_chain(const CellLibrary& lib, bool mark_po = true) {
  GateNetlist nl("chain");
  const int a = nl.add_primary_input("a");
  const int c0 = nl.add_cell("u0", lib.by_name("INVx1"), {a}, "n0");
  const int c1 =
      nl.add_cell("u1", lib.by_name("INVx1"), {nl.cell(c0).out_net}, "y");
  if (mark_po) nl.mark_primary_output(nl.cell(c1).out_net);
  return nl;
}

/// Owns a complete AnalysisInput: design + parasitics + synthetic charlib
/// (the one WITH wire observations) + both fitted models. The netlist is
/// built by a callback against the FIXTURE's own cell library — CellInst
/// stores CellType pointers into the specific CellLibrary object it was
/// built from, so the library must outlive the netlist.
struct FullFixture {
  CellLibrary cells = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();
  GateNetlist nl;
  ParasiticDb spef;
  CharLib charlib;
  NSigmaCellModel cell_model;
  NSigmaWireModel wire_model;

  template <class BuildFn>
  explicit FullFixture(BuildFn&& build)
      : nl(build(cells)),
        spef(generate_parasitics(nl, tech)),
        charlib(make_synthetic_charlib()),
        cell_model(NSigmaCellModel::fit(charlib)),
        wire_model(NSigmaWireModel::fit(charlib, cells)) {}

  AnalysisInput input() const {
    AnalysisInput in;
    in.netlist = &nl;
    in.parasitics = &spef;
    in.charlib = &charlib;
    in.cell_model = &cell_model;
    in.wire_model = &wire_model;
    in.tech = &charlib.tech();
    return in;
  }
};

GateNetlist load_c17(const CellLibrary& cells) {
  return load_bench(repo_path("data/c17.bench"), cells);
}

// -------------------------------------------------- interval algebra basics

TEST(IntervalAlgebra, AddMaxHullMulFloor) {
  const Interval a{1.0, 3.0}, b{-2.0, 2.0};
  const Interval s = analysis::iv_add(a, b);
  EXPECT_DOUBLE_EQ(s.lo, -1.0);
  EXPECT_DOUBLE_EQ(s.hi, 5.0);
  const Interval m = analysis::iv_max(a, b);
  EXPECT_DOUBLE_EQ(m.lo, 1.0);
  EXPECT_DOUBLE_EQ(m.hi, 3.0);
  const Interval h = analysis::iv_hull(a, b);
  EXPECT_DOUBLE_EQ(h.lo, -2.0);
  EXPECT_DOUBLE_EQ(h.hi, 3.0);
  // Four-corner product with a sign change: extrema at mixed corners.
  const Interval p = analysis::iv_mul(a, b);
  EXPECT_DOUBLE_EQ(p.lo, -6.0);
  EXPECT_DOUBLE_EQ(p.hi, 6.0);
  const Interval f = analysis::iv_floor_at(b, 0.0);
  EXPECT_DOUBLE_EQ(f.lo, 0.0);
  EXPECT_DOUBLE_EQ(f.hi, 2.0);
  EXPECT_TRUE(Interval::point(4.0).contains(4.0));
  EXPECT_FALSE(Interval::point(4.0).contains(4.1));
}

TEST(IntervalAlgebra, SampledOperandsStayInsideComposedIntervals) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int trial = 0; trial < 200; ++trial) {
    double a0 = u(rng), a1 = u(rng), b0 = u(rng), b1 = u(rng);
    const Interval a{std::min(a0, a1), std::max(a0, a1)};
    const Interval b{std::min(b0, b1), std::max(b0, b1)};
    std::uniform_real_distribution<double> ua(a.lo, a.hi), ub(b.lo, b.hi);
    for (int k = 0; k < 16; ++k) {
      const double x = ua(rng), y = ub(rng);
      EXPECT_TRUE(analysis::iv_add(a, b).contains(x + y, 1e-12));
      EXPECT_TRUE(analysis::iv_max(a, b).contains(std::max(x, y), 1e-12));
      EXPECT_TRUE(analysis::iv_mul(a, b).contains(x * y, 1e-12));
      EXPECT_TRUE(analysis::iv_hull(a, b).contains(x, 1e-12));
      EXPECT_TRUE(
          analysis::iv_floor_at(a, 0.5).contains(std::max(0.5, x), 1e-12));
    }
  }
}

TEST(IntervalAlgebra, CubicRangeIsExactOnKnownCubic) {
  // z^3 - 3z on [-2, 2]: stationary points z = +-1 give -+2, endpoints
  // give +-2, so the exact range is [-2, 2].
  const Interval r = analysis::cubic_range(1.0, 0.0, -3.0, 0.0, -2.0, 2.0);
  EXPECT_NEAR(r.lo, -2.0, 1e-8);
  EXPECT_NEAR(r.hi, 2.0, 1e-8);
  // Interior maximum only: stationary point must be found, not just ends.
  const Interval q = analysis::cubic_range(0.0, -1.0, 0.0, 1.0, -0.5, 2.0);
  EXPECT_NEAR(q.hi, 1.0, 1e-8);   // at z = 0
  EXPECT_NEAR(q.lo, -3.0, 1e-8);  // at z = 2
}

TEST(IntervalAlgebra, CubicRangeContainsDenseSamples) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coef(-2.0, 2.0), zs(-6.0, 6.0);
  for (int trial = 0; trial < 300; ++trial) {
    const double a3 = coef(rng), a2 = coef(rng), a1 = coef(rng),
                 a0 = coef(rng);
    double z0 = zs(rng), z1 = zs(rng);
    if (z0 > z1) std::swap(z0, z1);
    const Interval r = analysis::cubic_range(a3, a2, a1, a0, z0, z1);
    double lo = 1e300, hi = -1e300;
    for (int k = 0; k <= 400; ++k) {
      const double z = z0 + (z1 - z0) * k / 400.0;
      const double v = ((a3 * z + a2) * z + a1) * z + a0;
      EXPECT_TRUE(r.contains(v, tol_for(v)))
          << "cubic " << a3 << "," << a2 << "," << a1 << "," << a0
          << " at z=" << z;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Tightness: the certified range never exceeds the true range by more
    // than the sampling resolution (the helper is exact up to the guard).
    const double slack = 1e-2 * (1.0 + hi - lo);
    EXPECT_GE(r.lo, lo - slack);
    EXPECT_LE(r.hi, hi + slack);
  }
}

TEST(IntervalAlgebra, CfShapeRangeGaussianIsIdentity) {
  const Interval zero = Interval::point(0.0);
  const Interval r = analysis::cf_shape_range(zero, zero, zero, 4.0);
  EXPECT_NEAR(r.lo, -4.0, 1e-7);
  EXPECT_NEAR(r.hi, 4.0, 1e-7);
}

TEST(IntervalAlgebra, CfShapeRangeContainsShapedScores) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> ug(-2.0, 5.0), uk(-1.5, 15.0),
      uz(-6.0, 6.0), uw(0.0, 0.4);
  for (int trial = 0; trial < 300; ++trial) {
    // A coefficient box built the way propagate.cpp builds it: from a
    // gamma/kappa interval, g6 = gamma/6, k24 = kappa/24, g36 = gamma^2/36.
    double glo = ug(rng), ghi = glo + uw(rng) * 3.0;
    double klo = uk(rng), khi = klo + uw(rng) * 5.0;
    const Interval gamma{glo, ghi}, kappa{klo, khi};
    const Interval g6{gamma.lo / 6.0, gamma.hi / 6.0};
    const Interval k24{kappa.lo / 24.0, kappa.hi / 24.0};
    const Interval g36 =
        analysis::iv_mul({gamma.lo / 6.0, gamma.hi / 6.0},
                         {gamma.lo / 6.0, gamma.hi / 6.0});
    const Interval r = analysis::cf_shape_range(g6, k24, g36, 6.0);
    std::uniform_real_distribution<double> pick_g(gamma.lo, gamma.hi),
        pick_k(kappa.lo, kappa.hi);
    for (int k = 0; k < 24; ++k) {
      const double g = pick_g(rng);
      CornishFisher cf;  // exactly the netmc construction (no clamps)
      cf.g6 = g / 6.0;
      cf.k24 = pick_k(rng) / 24.0;
      cf.g36 = g * g / 36.0;
      const double v = cf.shape(uz(rng));
      EXPECT_TRUE(r.contains(v, tol_for(v)));
    }
  }
}

// ------------------------------------------- model-level soundness (arcs)

TEST(IntervalSoundness, GridRangeContainsLookups) {
  const NSigmaCellModel model = NSigmaCellModel::fit(testfix::make_charlib());
  const Grid2D& grid = model.arc("INVx1", 0, true).mean_delay;
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> us(1e-12, 700e-12),
      uc(0.1e-15, 20e-15);
  for (int trial = 0; trial < 200; ++trial) {
    double s0 = us(rng), s1 = us(rng);
    if (s0 > s1) std::swap(s0, s1);
    const double load = uc(rng);
    const Interval r = analysis::grid_range_x(grid, {s0, s1}, load);
    for (int k = 0; k <= 40; ++k) {
      const double s = s0 + (s1 - s0) * k / 40.0;
      const double v = grid.lookup(s, load);
      EXPECT_TRUE(r.contains(v, tol_for(v)))
          << "lookup(" << s << ", " << load << ")";
    }
  }
}

TEST(IntervalSoundness, SurfaceMomentRangeContainsMomentsAt) {
  const NSigmaCellModel model = NSigmaCellModel::fit(testfix::make_charlib());
  const CalibrationSurface& calib = model.arc("INVx1", 0, false).calib;
  std::mt19937_64 rng(37);
  std::uniform_real_distribution<double> us(1e-12, 700e-12),
      uc(0.1e-15, 20e-15);
  for (int trial = 0; trial < 200; ++trial) {
    double s0 = us(rng), s1 = us(rng);
    if (s0 > s1) std::swap(s0, s1);
    const double load = uc(rng);
    const MomentIntervals mi =
        analysis::surface_moment_range(calib, {s0, s1}, load);
    for (int k = 0; k <= 32; ++k) {
      const double s = s0 + (s1 - s0) * k / 32.0;
      const Moments m = calib.moments_at(s, load);
      EXPECT_TRUE(mi.mu.contains(m.mu, tol_for(m.mu)));
      EXPECT_TRUE(mi.sigma.contains(m.sigma, tol_for(m.sigma)));
      EXPECT_TRUE(mi.gamma.contains(m.gamma, tol_for(m.gamma)));
      EXPECT_TRUE(mi.kappa.contains(m.kappa, tol_for(m.kappa)));
    }
  }
}

TEST(IntervalSoundness, CellStatRangeContainsNetmcSampledDelay) {
  // The end-to-end per-arc property: draw a slew anywhere in the slew
  // interval and a standard score |z| <= z_max, evaluate the EXACT delay
  // the Monte-Carlo sampler computes (netmc.cpp hot loop), and check it
  // lies in the static range built from the same slew interval.
  const NSigmaCellModel model = NSigmaCellModel::fit(testfix::make_charlib());
  const CalibrationSurface& calib = model.arc("INVx1", 0, true).calib;
  const double z_max = 6.0;
  std::mt19937_64 rng(41);
  std::uniform_real_distribution<double> us(1e-12, 700e-12),
      uc(0.1e-15, 20e-15), uz(-z_max, z_max);
  for (int trial = 0; trial < 200; ++trial) {
    double s0 = us(rng), s1 = us(rng);
    if (s0 > s1) std::swap(s0, s1);
    const double load = uc(rng);
    const MomentIntervals mi =
        analysis::surface_moment_range(calib, {s0, s1}, load);
    const Interval shaped = analysis::cell_stat_range(mi, z_max, true);
    const Interval gaussian = analysis::cell_stat_range(mi, z_max, false);
    std::uniform_real_distribution<double> pick_s(s0, s1);
    for (int k = 0; k < 32; ++k) {
      const Moments m = calib.moments_at(pick_s(rng), load);
      const double z = uz(rng);
      CornishFisher cf;
      cf.g6 = m.gamma / 6.0;
      cf.k24 = m.kappa / 24.0;
      cf.g36 = m.gamma * m.gamma / 36.0;
      const double shaped_d = std::max(0.0, m.mu + m.sigma * cf.shape(z));
      EXPECT_TRUE(shaped.contains(shaped_d, tol_for(shaped_d)));
      const double gauss_d = std::max(0.0, m.mu + m.sigma * z);
      EXPECT_TRUE(gaussian.contains(gauss_d, tol_for(gauss_d)));
    }
  }
}

TEST(IntervalSoundness, CellStatRangeGaussianPointIsExact) {
  MomentIntervals mi;
  mi.mu = Interval::point(100e-12);
  mi.sigma = Interval::point(10e-12);
  mi.gamma = Interval::point(0.0);
  mi.kappa = Interval::point(0.0);
  const Interval r = analysis::cell_stat_range(mi, 3.0, true);
  EXPECT_NEAR(r.lo, 70e-12, 1e-18);
  EXPECT_NEAR(r.hi, 130e-12, 1e-18);
}

TEST(IntervalSoundness, WireRangeContainsSampledWireDelay) {
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> ue(1e-13, 1e-10), ux(0.0, 0.3),
      uz(-6.0, 6.0);
  for (int trial = 0; trial < 400; ++trial) {
    const double elmore = ue(rng), xw = ux(rng);
    const Interval r = analysis::wire_range(elmore, xw, 6.0);
    const double z = uz(rng);
    // Exactly the netmc wire formula: Eq. 7 with the 5%-Elmore floor.
    const double v = std::max(0.05 * elmore, elmore * (1.0 + xw * z));
    EXPECT_TRUE(r.contains(v, tol_for(v)));
  }
}

// ------------------------------------------------------- structural facts

TEST(Structure, CleanChainHasNoFindings) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  const StructureFacts f = compute_structure(nl);
  EXPECT_TRUE(f.pins_ok);
  EXPECT_TRUE(f.acyclic);
  EXPECT_TRUE(f.levelization_ok);
  EXPECT_TRUE(f.cycles.empty());
  EXPECT_TRUE(f.undriven_nets.empty());
  EXPECT_TRUE(f.undriven_cone_cells.empty());
  EXPECT_TRUE(f.dangling_cells.empty());
  EXPECT_TRUE(f.unreachable_pos.empty());
}

TEST(Structure, CombinationalCycleIsAnSccError) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells);
  nl.rewire_fanin(0, 0, nl.cell(1).out_net);  // u0 <- y: u0/u1 cycle
  const StructureFacts f = compute_structure(nl);
  EXPECT_FALSE(f.acyclic);
  ASSERT_EQ(f.cycles.size(), 1u);
  EXPECT_EQ(f.cycles[0], (std::vector<int>{0, 1}));

  AnalysisInput in;
  in.netlist = &nl;
  const AnalysisReport report = run_analysis(in);
  EXPECT_EQ(count_rule(report, "analysis.scc-cycle"), 1);
  EXPECT_EQ(report.exit_code(), 2);
  EXPECT_FALSE(report.intervals().ran);  // cyclic graph: no propagation
}

TEST(Structure, SelfLoopRebindMakesPoUnreachableAndCellsDangle) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells);
  // u1's output rebound onto n0: u1 now feeds itself (1-cell SCC), the PO
  // net y loses its driver, and no cell reaches a primary output.
  nl.set_cell_out_net_raw(1, nl.cell(0).out_net);
  const StructureFacts f = compute_structure(nl);
  EXPECT_FALSE(f.acyclic);
  ASSERT_EQ(f.cycles.size(), 1u);
  EXPECT_EQ(f.cycles[0], (std::vector<int>{1}));
  // The stale declared-driver link on y is lint's net.driver-mismatch
  // territory; structurally the PO is simply unreachable from any PI.
  EXPECT_EQ(f.unreachable_pos.size(), 1u);
}

TEST(Structure, UndrivenNetCutsItsDownstreamCone) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl("ud");
  const int a = nl.add_primary_input("a");
  const int ghost = nl.add_net("ghost");  // no driver, not a PI
  const int c0 = nl.add_cell("u0", cells.by_name("INVx1"), {a}, "b");
  const int c1 = nl.add_cell("u1", cells.by_name("INVx1"), {ghost}, "y");
  nl.mark_primary_output(nl.cell(c0).out_net);
  nl.mark_primary_output(nl.cell(c1).out_net);
  const StructureFacts f = compute_structure(nl);
  EXPECT_TRUE(f.acyclic);
  ASSERT_EQ(f.undriven_nets.size(), 1u);
  EXPECT_EQ(f.undriven_nets[0], ghost);
  ASSERT_EQ(f.undriven_cone_cells.size(), 1u);
  EXPECT_EQ(f.undriven_cone_cells[0], c1);
  ASSERT_EQ(f.unreachable_pos.size(), 1u);

  AnalysisInput in;
  in.netlist = &nl;
  const AnalysisReport report = run_analysis(in);
  EXPECT_EQ(count_rule(report, "analysis.undriven-cone"), 2);  // net + cells
  EXPECT_EQ(count_rule(report, "analysis.unreachable-po"), 1);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(Structure, DanglingConeIsInfoOnly) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
  const StructureFacts f = compute_structure(nl);
  EXPECT_EQ(f.dangling_cells.size(), 2u);
  AnalysisInput in;
  in.netlist = &nl;
  const AnalysisReport report = run_analysis(in);
  EXPECT_EQ(count_rule(report, "analysis.dangling-cone"), 1);
  EXPECT_EQ(report.count(Severity::kError), 0);
}

TEST(Structure, LevelizationCrossCheckPassesOnC17) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = load_c17(cells);
  const StructureFacts f = compute_structure(nl);
  EXPECT_TRUE(f.pins_ok);
  EXPECT_TRUE(f.acyclic);
  EXPECT_TRUE(f.levelization_ok) << f.levelization_note;
  EXPECT_GT(f.levels, 0u);
}

// ------------------------------------------------- domain-coverage audit

TEST(Coverage, HeavyLoadOutsideTableDomainWarns) {
  FullFixture fx([](const CellLibrary& c) { return inv_chain(c); });
  RcTree heavy;  // 50 fF on n0 vs a load axis topping out at 12 fF
  heavy.add_node(0, 100.0, 50e-15);
  heavy.mark_sink(1, "u1:0");
  fx.spef.add("n0", heavy);

  const AnalysisReport report = run_analysis(fx.input());
  EXPECT_TRUE(report.coverage().ran);
  EXPECT_GE(count_rule(report, "analysis.domain-coverage"), 1);
  bool saw_warn = false;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == "analysis.domain-coverage" && d.severity == Severity::kWarn)
      saw_warn = true;
  }
  EXPECT_TRUE(saw_warn) << report.to_text();
  std::size_t out = 0;
  for (const auto& row : report.coverage().rows) out += row.out;
  EXPECT_GE(out, 1u);
  EXPECT_EQ(report.exit_code(), 1);  // domain findings gate at warn, not error
}

TEST(Coverage, C17InsideSyntheticDomainIsErrorFree) {
  FullFixture fx(load_c17);
  const AnalysisReport report = run_analysis(fx.input());
  EXPECT_TRUE(report.intervals().ran);
  EXPECT_TRUE(report.coverage().ran);
  EXPECT_EQ(report.count(Severity::kError), 0) << report.to_text();
  // Every audited row is accounted: arcs = in + near + out.
  for (const auto& row : report.coverage().rows) {
    EXPECT_EQ(row.arcs, row.in + row.near + row.out);
  }
}

// ------------------------------------- propagation + cross-engine gating

TEST(VerifyEngines, AllThreeEnginesStayInsideStaticBoundsOnC17) {
  FullFixture fx(load_c17);
  AnalysisOptions opt;
  opt.verify_engines = true;
  opt.verify_samples = 400;
  const AnalysisReport report = run_analysis(fx.input(), opt);
  ASSERT_TRUE(report.verify().ran) << report.to_text();
  EXPECT_GT(report.verify().checks, 0u);
  EXPECT_EQ(report.verify().violations, 0u) << report.to_text();
  EXPECT_EQ(report.count(Severity::kError), 0) << report.to_text();
  // The interval section mirrors the propagation result.
  EXPECT_TRUE(report.intervals().ran);
  EXPECT_GT(report.intervals().reachable, 0u);
  EXPECT_GE(report.intervals().worst_po, 0);
  EXPECT_GT(report.intervals().worst_po_bounds.hi, 0.0);
}

TEST(VerifyEngines, GateIsSkippedUnlessRequested) {
  FullFixture fx(load_c17);
  const AnalysisReport report = run_analysis(fx.input());
  EXPECT_FALSE(report.verify().ran);
}

TEST(Report, ByteIdenticalAcrossThreadCounts) {
  FullFixture fx([](const CellLibrary& c) {
    RandomNetlistSpec spec;
    spec.name = "angen";
    spec.target_cells = 120;
    spec.num_primary_inputs = 8;
    GateNetlist nl = generate_random_mapped(spec, c);
    finalize_design(nl, c, TechParams::nominal28());
    return nl;
  });

  auto run_with = [&](unsigned threads) {
    AnalysisOptions opt;
    opt.exec.threads = threads;
    opt.verify_engines = true;
    opt.verify_samples = 200;
    return run_analysis(fx.input(), opt);
  };
  const AnalysisReport serial = run_with(1);
  const AnalysisReport parallel = run_with(4);
  EXPECT_EQ(serial.to_text(), parallel.to_text());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_TRUE(serial.verify().ran);
  EXPECT_EQ(serial.verify().violations, 0u) << serial.to_text();
}

TEST(Report, MissingModelsSkipIntervalPassesGracefully) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  AnalysisInput in;
  in.netlist = &nl;  // no parasitics, charlib, or models
  const AnalysisReport report = run_analysis(in);
  EXPECT_FALSE(report.intervals().ran);
  EXPECT_FALSE(report.coverage().ran);
  EXPECT_TRUE(report.structure().ran);
  EXPECT_EQ(report.count(Severity::kError), 0) << report.to_text();
}

// --------------------------------------------------- engine / registry

TEST(Engine, DisabledPassesAreSkipped) {
  FullFixture fx(load_c17);
  AnalysisOptions opt;
  opt.disabled_passes = {"analysis.domain-coverage"};
  const AnalysisReport report = run_analysis(fx.input(), opt);
  EXPECT_EQ(count_rule(report, "analysis.domain-coverage"), 0);
  EXPECT_EQ(report.passes_run(),
            AnalysisRegistry::global().passes().size() - 1);
}

TEST(Engine, RegistryRejectsDuplicateIds) {
  AnalysisRegistry reg;
  AnalysisPass pass;
  pass.id = "custom.pass";
  pass.check = [](const AnalysisInput&, const AnalysisPrep&,
                  const AnalysisOptions&, std::vector<Diagnostic>&) {};
  reg.add(pass);
  EXPECT_NE(reg.find("custom.pass"), nullptr);
  EXPECT_THROW(reg.add(pass), std::invalid_argument);
  EXPECT_EQ(reg.find("no.such.pass"), nullptr);
}

TEST(Engine, ThrowingPassBecomesInternalDiagnostic) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  AnalysisRegistry reg;
  AnalysisPass pass;
  pass.id = "custom.throws";
  pass.check = [](const AnalysisInput&, const AnalysisPrep&,
                  const AnalysisOptions&, std::vector<Diagnostic>&) {
    throw std::runtime_error("boom");
  };
  reg.add(pass);
  AnalysisInput in;
  in.netlist = &nl;
  const AnalysisReport report = run_analysis(in, {}, reg);
  ASSERT_EQ(count_rule(report, "analysis.internal"), 1);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(Engine, MergeRestoresCanonicalOrderAndExitCode) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  AnalysisInput in;
  in.netlist = &nl;
  AnalysisReport report = run_analysis(in);
  EXPECT_EQ(report.exit_code(), 0);
  report.merge({{Severity::kWarn, "parse.bench", "line:9", "odd", "", 9}});
  EXPECT_EQ(report.exit_code(), 1);
  report.merge({{Severity::kError, "parse.bench", "line:3", "bad", "", 3}});
  EXPECT_EQ(report.exit_code(), 2);
  // Errors sort before warnings regardless of merge order.
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kError);
}

// ------------------------------------- fault site + tool exit-code map

TEST(FaultSite, NanCollapsedIntervalFiresTheVerifyGate) {
  FullFixture fx(load_c17);
  // Poison the first cell's output net: its certified bounds collapse to
  // [0, 0], so every engine's (positive) arrival there must violate.
  const int victim = fx.nl.cell(0).out_net;
  install_fault_plan(FaultPlan::parse(
      "analyze.interval@" + std::to_string(victim) + "=nan"));
  AnalysisOptions opt;
  opt.verify_engines = true;
  opt.verify_samples = 200;
  const AnalysisReport report = run_analysis(fx.input(), opt);
  clear_fault_plan();
  ASSERT_TRUE(report.verify().ran);
  EXPECT_GT(report.verify().violations, 0u);
  EXPECT_GE(count_rule(report, "analysis.verify-engines"), 1);
  EXPECT_EQ(report.exit_code(), 2);
}

TEST(FaultSite, ThrowAndCancelPropagateAsTypedErrors) {
  FullFixture fx(load_c17);
  const int victim = fx.nl.cell(0).out_net;
  install_fault_plan(FaultPlan::parse(
      "analyze.interval@" + std::to_string(victim) + "=throw"));
  EXPECT_THROW(run_analysis(fx.input()), FaultInjectedError);
  install_fault_plan(FaultPlan::parse(
      "analyze.interval@" + std::to_string(victim) + "=cancel"));
  EXPECT_THROW(run_analysis(fx.input()), CancelledError);
  clear_fault_plan();
}

TEST(ExitCodes, HandlerMapsTypedErrorsToSharedCodes) {
  auto code_of = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return handle_tool_exception("test_analysis");
    }
    return -1;
  };
  EXPECT_EQ(code_of([] { throw CancelledError("stop"); }), kExitCancelled);
  // An injected fault that escapes is an internal error, not a cancel.
  EXPECT_EQ(code_of([] { throw FaultInjectedError("fault"); }),
            kExitInternal);
  EXPECT_EQ(code_of([] { throw ParseError("bad"); }), kExitParse);
  EXPECT_EQ(code_of([] { throw IoError("disk"); }), kExitIo);
  EXPECT_EQ(code_of([] { throw std::runtime_error("x"); }), kExitInternal);
}

// --------------------------------------------- lint JSON schema golden

/// The fixed defect cluster used by the golden: purely structural (no
/// floating-point content), so the rendered JSON is platform-stable.
LintReport golden_lint_report() {
  // Both static: CellInst keeps CellType pointers into the library.
  static const CellLibrary cells = CellLibrary::standard();
  static const GateNetlist nl = [] {
    GateNetlist n = inv_chain(cells);
    n.set_cell_out_net_raw(1, n.cell(0).out_net);
    return n;
  }();
  LintInput in;
  in.netlist = &nl;
  return run_lint(in);
}

TEST(LintGolden, JsonMatchesCheckedInSchema) {
  const std::string json = golden_lint_report().to_json();
  const std::string path = repo_path("data/lint_golden.json");
  if (std::getenv("NSDC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << json;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "lint JSON schema drifted; regenerate with NSDC_REGEN_GOLDEN=1 "
         "after an intentional change";
}

TEST(LintGolden, SchemaVersionAndStableDiagnosticOrder) {
  const std::string json = golden_lint_report().to_json();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  // JSON diagnostics are stable-sorted by (rule, object, line) regardless
  // of severity, so consumers can diff reports across runs.
  std::vector<Diagnostic> diags = {
      {Severity::kInfo, "b.rule", "net:z", "later rule", "", 0},
      {Severity::kError, "a.rule", "net:n", "line 9", "", 9},
      {Severity::kWarn, "a.rule", "net:n", "line 2", "", 2},
      {Severity::kWarn, "a.rule", "net:m", "other object", "", 5},
  };
  sort_diagnostics_for_json(diags);
  EXPECT_EQ(diags[0].object, "net:m");
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_EQ(diags[2].line, 9);
  EXPECT_EQ(diags[3].rule, "b.rule");
  EXPECT_TRUE(diagnostic_json_before(diags[0], diags[1]));
  EXPECT_FALSE(diagnostic_json_before(diags[3], diags[0]));
}

}  // namespace
}  // namespace nsdc
