#include "stats/quantiles.hpp"

#include <gtest/gtest.h>

#include "stats/moments.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace nsdc {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(NormalQuantile, RoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, SigmaPoints) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.9986501019683699), 3.0, 1e-7);
}

TEST(NormalQuantile, DomainErrors) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
}

TEST(SigmaLevels, PaperPercentDefective) {
  // Paper Table I: -3s -> 0.14%, -2s -> 2.28%, -1s -> 15.87%, 0 -> 50%,
  // +1s -> 84.13%, +2s -> 97.72%, +3s -> 99.86%.
  EXPECT_NEAR(sigma_level_probability(-3), 0.00135, 5e-5);
  EXPECT_NEAR(sigma_level_probability(-2), 0.02275, 5e-5);
  EXPECT_NEAR(sigma_level_probability(-1), 0.15866, 5e-5);
  EXPECT_NEAR(sigma_level_probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sigma_level_probability(2), 0.97725, 5e-5);
  EXPECT_NEAR(sigma_level_probability(3), 0.99865, 5e-5);
}

TEST(Quantile, SortedLinearInterpolation) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.125), 0.5);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.99), 42.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(quantile(xs, 0.5), std::invalid_argument);
}

TEST(Quantile, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 2.0);
}

TEST(SigmaQuantiles, GaussianSampleMatchesTheory) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 400000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const auto q = sigma_quantiles(xs);
  for (std::size_t i = 0; i < 7; ++i) {
    const double expected = 10.0 + 2.0 * kSigmaLevels[i];
    // Tail quantiles carry more sampling noise.
    const double tol = (i == 0 || i == 6) ? 0.15 : 0.05;
    EXPECT_NEAR(q[i], expected, tol) << "level " << kSigmaLevels[i];
  }
}

TEST(SigmaQuantiles, MonotoneNondecreasing) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform());
  const auto q = sigma_quantiles(xs);
  for (std::size_t i = 1; i < 7; ++i) EXPECT_LE(q[i - 1], q[i]);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x; I_x(2,2) = x^2 (3 - 2x).
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
    EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
  }
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 1.0), 1.0);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(incomplete_beta(5.0, 2.0, 0.3),
              1.0 - incomplete_beta(2.0, 5.0, 0.7), 1e-12);
}

TEST(HdQuantile, MedianMatchesType7OnSymmetricData) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(hd_quantile(xs, 0.5), quantile(xs, 0.5), 0.05);
}

TEST(HdQuantile, SingleAndSmallSamples) {
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(hd_quantile(one, 0.2), 3.0);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const double q = hd_quantile(xs, 0.5);
  EXPECT_GT(q, 1.5);
  EXPECT_LT(q, 2.5);
}

TEST(PotQuantile, LowerMseAtExtremeTailOfSkewedData) {
  // The characterization workload: right-skewed lognormal-like delay
  // samples, a few hundred per condition. Across resamples the GPD tail
  // fit must beat the single-order-statistic estimate in mean squared
  // error at the 99.865% point (heavy tail, where the raw estimate is
  // noisiest) and stay competitive at the short lower tail.
  Rng rng(23);
  const double p_hi = sigma_level_probability(3);
  const double p_lo = sigma_level_probability(-3);
  // Ground truth from a huge sample.
  std::vector<double> big;
  for (int i = 0; i < 2000000; ++i) big.push_back(std::exp(rng.normal(0.0, 0.35)));
  const auto sb = sorted_copy(big);
  const double truth_hi = quantile_sorted(sb, p_hi);
  const double truth_lo = quantile_sorted(sb, p_lo);

  double mse_t7_hi = 0, mse_pot_hi = 0, mse_t7_lo = 0, mse_pot_lo = 0;
  const int reps = 120;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 600; ++i) xs.push_back(std::exp(rng.normal(0.0, 0.35)));
    const auto s = sorted_copy(xs);
    auto sq = [](double v) { return v * v; };
    mse_t7_hi += sq(quantile_sorted(s, p_hi) - truth_hi);
    mse_pot_hi += sq(pot_quantile_sorted(s, p_hi) - truth_hi);
    mse_t7_lo += sq(quantile_sorted(s, p_lo) - truth_lo);
    mse_pot_lo += sq(pot_quantile_sorted(s, p_lo) - truth_lo);
  }
  EXPECT_LT(mse_pot_hi, mse_t7_hi);
  // The short lower tail is where the raw order statistic wins — which is
  // why sigma_quantiles_smoothed applies POT to the upper levels only.
  EXPECT_GT(mse_pot_lo, 0.0);
  (void)mse_t7_lo;
}

TEST(PotQuantile, MatchesTheoryOnLargeGaussian) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal(5.0, 2.0));
  const auto s = sorted_copy(xs);
  EXPECT_NEAR(pot_quantile_sorted(s, sigma_level_probability(3)),
              5.0 + 3.0 * 2.0, 0.15);
  EXPECT_NEAR(pot_quantile_sorted(s, sigma_level_probability(-3)),
              5.0 - 3.0 * 2.0, 0.15);
}

TEST(PotQuantile, FallsBackOutsideTail) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform());
  const auto s = sorted_copy(xs);
  EXPECT_DOUBLE_EQ(pot_quantile_sorted(s, 0.5), quantile_sorted(s, 0.5));
  // Tiny samples fall back too.
  const std::vector<double> tiny{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pot_quantile_sorted(tiny, 0.001),
                   quantile_sorted(tiny, 0.001));
}

TEST(PotQuantile, SmoothedLevelsOrderedOnSkewedData) {
  Rng rng(33);
  std::vector<double> xs;
  for (int i = 0; i < 1500; ++i) xs.push_back(std::exp(rng.normal(0.0, 0.6)));
  const auto q = sigma_quantiles_smoothed(xs);
  for (int lv = 1; lv < 7; ++lv) {
    EXPECT_LE(q[static_cast<std::size_t>(lv - 1)],
              q[static_cast<std::size_t>(lv)]);
  }
  // The upper tail of a lognormal must stretch beyond the Gaussian rule.
  const Moments m = compute_moments(xs);
  EXPECT_GT(q[6], m.mu + 2.2 * m.sigma);
}

TEST(HdQuantile, MonotoneInP) {
  Rng rng(25);
  std::vector<double> xs;
  for (int i = 0; i < 800; ++i) xs.push_back(rng.uniform());
  const auto s = sorted_copy(xs);
  double prev = -1.0;
  for (double p = 0.001; p < 1.0; p += 0.05) {
    const double q = hd_quantile_sorted(s, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(HdQuantile, SigmaLevelsOrdered) {
  Rng rng(27);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(std::exp(rng.normal(0.0, 0.5)));
  const auto q = sigma_quantiles_hd(xs);
  for (int lv = 1; lv < 7; ++lv) {
    EXPECT_LT(q[static_cast<std::size_t>(lv - 1)],
              q[static_cast<std::size_t>(lv)]);
  }
}

TEST(SortedCopy, Sorts) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  const auto s = sorted_copy(xs);
  EXPECT_EQ(s, (std::vector<double>{-1.0, 2.0, 3.0}));
}

class QuantileGridSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileGridSweep, MatchesClosedFormUniform) {
  // For sorted uniform grid 0..n-1, type-7 quantile is p*(n-1).
  const double p = GetParam();
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) xs.push_back(i);
  EXPECT_NEAR(quantile_sorted(xs, p), p * 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ps, QuantileGridSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

}  // namespace
}  // namespace nsdc
