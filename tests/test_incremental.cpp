// IncrementalSta correctness: after any sequence of netlist edits, the
// incrementally-updated result must be byte-identical to a fresh full
// StaEngine::run() on the edited netlist, at any thread count — while
// doing work proportional to the edit's fanout cone, not the design.
#include "sta/incremental.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/sizer.hpp"
#include "synthetic_charlib.hpp"
#include "util/rng.hpp"

namespace nsdc {
namespace {

/// StaConfig that actually exercises the pool at `threads` lanes (the
/// default min_parallel_cells would keep small cones serial).
StaConfig exec_config(unsigned threads) {
  StaConfig cfg;
  cfg.exec.threads = threads;
  cfg.min_parallel_cells = threads > 1 ? 1 : 1u << 30;
  return cfg;
}

class IncrementalStaTest : public ::testing::Test {
 protected:
  IncrementalStaTest()
      : charlib(testfix::make_full_charlib()),
        lib(CellLibrary::standard()),
        model(NSigmaCellModel::fit(charlib)),
        tech(TechParams::nominal28()) {}

  CharLib charlib;
  CellLibrary lib;
  NSigmaCellModel model;
  TechParams tech;
};

/// Byte-level equality of everything STA consumers read from a Result.
void expect_results_identical(const StaEngine::Result& got,
                              const StaEngine::Result& ref,
                              const std::string& what) {
  ASSERT_EQ(got.nets.size(), ref.nets.size()) << what;
  ASSERT_EQ(got.net_load.size(), ref.net_load.size()) << what;
  EXPECT_EQ(got.max_arrival, ref.max_arrival) << what;
  EXPECT_EQ(got.critical_net, ref.critical_net) << what;
  EXPECT_EQ(got.critical_edge, ref.critical_edge) << what;
  for (std::size_t n = 0; n < ref.nets.size(); ++n) {
    const auto& g = got.nets[n];
    const auto& r = ref.nets[n];
    ASSERT_TRUE(std::memcmp(g.arrival.data(), r.arrival.data(),
                            sizeof(g.arrival)) == 0 &&
                std::memcmp(g.slew.data(), r.slew.data(), sizeof(g.slew)) ==
                    0 &&
                g.from_pin == r.from_pin && g.reachable == r.reachable &&
                got.net_load[n] == ref.net_load[n])
        << what << ": net " << n << " diverged (arrival " << g.arrival[0]
        << "/" << g.arrival[1] << " vs " << r.arrival[0] << "/" << r.arrival[1]
        << ")";
  }
}

/// Random retype edit: a random cell to a random strength of its function.
void random_retype(GateNetlist& nl, const CellLibrary& lib, Rng& rng) {
  const int c = static_cast<int>(
      rng.uniform_int(0, static_cast<std::int64_t>(nl.num_cells()) - 1));
  const int strengths[] = {1, 2, 4, 8};
  const int s = strengths[rng.uniform_int(0, 3)];
  nl.set_cell_type(c, lib.by_func(nl.cell(c).type->func(), s));
}

/// Random rewire edit that provably keeps the graph acyclic: pick a cell
/// and reconnect a random pin to a net whose driver sits at a strictly
/// lower level (or to a primary input).
void random_rewire(GateNetlist& nl, const CellLibrary& lib, Rng& rng) {
  (void)lib;
  const auto& lev = nl.levelization();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const int c = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(nl.num_cells()) - 1));
    const int my_level = lev.cell_level[static_cast<std::size_t>(c)];
    const int pin = static_cast<int>(rng.uniform_int(
        0, static_cast<std::int64_t>(nl.cell(c).fanin_nets.size()) - 1));
    const int target = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(nl.num_nets()) - 1));
    const int d = nl.net(target).driver_cell;
    if (d >= 0 && lev.cell_level[static_cast<std::size_t>(d)] >= my_level) {
      continue;  // could create a cycle or lengthen into itself
    }
    nl.rewire_fanin(c, pin, target);
    return;
  }
}

/// Drives `edits` random edits through two incremental timers (1 and 4
/// lanes) and checks both against a fresh full run after every edit.
void run_equivalence(const GateNetlist& base, const CellLibrary& lib,
                     const NSigmaCellModel& model, const TechParams& tech,
                     const ParasiticDb& parasitics, int edits,
                     double rewire_fraction, std::uint64_t seed) {
  GateNetlist nl = base;
  IncrementalSta inc1(model, tech, exec_config(1));
  IncrementalSta inc4(model, tech, exec_config(4));
  inc1.bind(nl, parasitics);
  inc4.bind(nl, parasitics);
  const StaEngine full_engine(model, tech);

  Rng rng(seed);
  std::size_t recomputed = 0;
  for (int e = 0; e < edits; ++e) {
    if (rng.uniform() < rewire_fraction) {
      random_rewire(nl, lib, rng);
    } else {
      random_retype(nl, lib, rng);
    }
    ASSERT_TRUE(nl.invariants_ok()) << "edit " << e;
    const auto& got1 = inc1.update();
    const auto& got4 = inc4.update();
    EXPECT_FALSE(inc1.last_stats().full_rerun) << "edit " << e;
    recomputed += inc1.last_stats().cells_recomputed;
    const StaEngine::Result ref = full_engine.run(nl, parasitics);
    expect_results_identical(got1, ref,
                             "edit " + std::to_string(e) + " (1 lane)");
    expect_results_identical(got4, ref,
                             "edit " + std::to_string(e) + " (4 lanes)");
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The point of the exercise: total incremental work must be far below
  // one full propagation per edit.
  EXPECT_LT(recomputed, static_cast<std::size_t>(edits) * nl.num_cells() / 4)
      << "incremental updates recomputed almost the whole design per edit";
}

TEST_F(IncrementalStaTest, RandomRetypesMatchFullRunC432) {
  GateNetlist nl = generate_iscas_like("C432", lib);
  const ParasiticDb parasitics = generate_parasitics(nl, tech);
  run_equivalence(nl, lib, model, tech, parasitics, /*edits=*/100,
                  /*rewire_fraction=*/0.0, /*seed=*/11);
}

TEST_F(IncrementalStaTest, RandomMixedEditsMatchFullRunDesigngen) {
  RandomNetlistSpec spec;
  spec.name = "incmix";
  spec.target_cells = 420;
  spec.num_primary_inputs = 24;
  spec.target_depth = 18;
  spec.seed = 5;
  GateNetlist nl = generate_random_mapped(spec, lib);
  // Wireless (pin-cap loads): rewired sinks have no pre-extracted RC pin
  // to land on, which matches how full STA treats un-annotated nets.
  const ParasiticDb empty;
  run_equivalence(nl, lib, model, tech, empty, /*edits=*/120,
                  /*rewire_fraction=*/0.4, /*seed=*/23);
}

TEST_F(IncrementalStaTest, ConvergenceCutStopsUnchangedCone) {
  // Re-applying a cell's existing type is journaled like any retype, but
  // every recomputed value converges immediately: the wave must die at the
  // seeds instead of sweeping the fanout cone.
  GateNetlist nl("chain");
  int net = nl.add_primary_input("a");
  std::vector<int> cells;
  for (int i = 0; i < 50; ++i) {
    cells.push_back(nl.add_cell("u" + std::to_string(i),
                                lib.by_name("INVx2"), {net},
                                "w" + std::to_string(i)));
    net = nl.cell(cells.back()).out_net;
  }
  nl.mark_primary_output(net);
  const ParasiticDb empty;
  IncrementalSta inc(model, tech);
  inc.bind(nl, empty);

  nl.set_cell_type(cells[25], lib.by_name("INVx2"));  // no-change retype
  inc.update();
  EXPECT_FALSE(inc.last_stats().full_rerun);
  // Seeds: the retyped cell and the driver of its fanin net.
  EXPECT_LE(inc.last_stats().cells_recomputed, 3u);
  EXPECT_GE(inc.last_stats().cells_converged, 1u);

  // A real retype near the tail touches only the short remaining cone.
  nl.set_cell_type(cells[47], lib.by_name("INVx8"));
  inc.update();
  EXPECT_FALSE(inc.last_stats().full_rerun);
  EXPECT_LE(inc.last_stats().cells_recomputed, 6u);
  const StaEngine engine(model, tech);
  expect_results_identical(inc.result(), engine.run(nl, empty), "tail edit");
}

TEST_F(IncrementalStaTest, OutNetMoveMatchesFullRun) {
  GateNetlist nl("move");
  const int a = nl.add_primary_input("a");
  const int u0 = nl.add_cell("u0", lib.by_name("INVx1"), {a}, "n0");
  const int u1 = nl.add_cell("u1", lib.by_name("INVx2"),
                             {nl.cell(u0).out_net}, "y");
  const int y = nl.cell(u1).out_net;
  nl.mark_primary_output(y);
  const ParasiticDb empty;
  IncrementalSta inc(model, tech);
  inc.bind(nl, empty);
  const StaEngine engine(model, tech);

  const int spare = nl.add_net("spare");  // structural growth: full rerun
  nl.mark_primary_output(spare);
  inc.update();
  EXPECT_TRUE(inc.last_stats().full_rerun);

  // Moving u1's output onto the spare net leaves y undriven (and its PO
  // unreachable) — full and incremental must agree on all of it.
  nl.set_cell_out_net(u1, spare);
  EXPECT_TRUE(nl.invariants_ok());
  inc.update();
  EXPECT_FALSE(inc.last_stats().full_rerun);
  expect_results_identical(inc.result(), engine.run(nl, empty), "move");
  EXPECT_FALSE(inc.result().nets[static_cast<std::size_t>(y)].reachable);

  nl.set_cell_out_net(u1, y);  // and back
  inc.update();
  EXPECT_FALSE(inc.last_stats().full_rerun);
  expect_results_identical(inc.result(), engine.run(nl, empty), "move back");
}

TEST_F(IncrementalStaTest, ParasiticInvalidationReannotates) {
  GateNetlist nl = generate_iscas_like("C432", lib);
  ParasiticDb parasitics = generate_parasitics(nl, tech);
  IncrementalSta inc(model, tech);
  inc.bind(nl, parasitics);

  // Regenerate one net's tree with a different wire seed and re-annotate.
  const int victim = nl.cell(static_cast<int>(nl.num_cells()) / 2).out_net;
  AnnotateConfig cfg;
  cfg.seed = 1234567;
  const ParasiticDb redo = generate_parasitics(nl, tech, cfg);
  const std::string& name = nl.net(victim).name;
  ASSERT_TRUE(redo.contains(name));
  parasitics.add(name, redo.net(name));

  EXPECT_TRUE(inc.in_sync());  // netlist untouched...
  inc.invalidate_parasitics(victim);
  EXPECT_FALSE(inc.in_sync());  // ...but annotation is pending
  inc.update();
  EXPECT_FALSE(inc.last_stats().full_rerun);
  EXPECT_EQ(inc.last_stats().nets_reannotated, 1u);
  const StaEngine engine(model, tech);
  expect_results_identical(inc.result(), engine.run(nl, parasitics),
                           "reannotate");
}

TEST_F(IncrementalStaTest, GenerationTracksStaleness) {
  GateNetlist nl("g");
  const int a = nl.add_primary_input("a");
  const int u = nl.add_cell("u", lib.by_name("INVx1"), {a}, "y");
  nl.mark_primary_output(nl.cell(u).out_net);
  const ParasiticDb empty;
  IncrementalSta inc(model, tech);
  inc.bind(nl, empty);
  EXPECT_TRUE(inc.in_sync());
  EXPECT_EQ(inc.synced_generation(), nl.generation());

  nl.set_cell_type(u, lib.by_name("INVx4"));
  EXPECT_FALSE(inc.in_sync());
  inc.update();
  EXPECT_TRUE(inc.in_sync());
  EXPECT_EQ(inc.synced_generation(), nl.generation());

  // A trimmed journal past the sync point forces (and survives as) a full
  // rebuild instead of silently replaying nothing.
  nl.set_cell_type(u, lib.by_name("INVx2"));
  nl.trim_edit_journal();
  inc.update();
  EXPECT_TRUE(inc.last_stats().full_rerun);
  EXPECT_TRUE(inc.in_sync());
}

TEST_F(IncrementalStaTest, UpdateBeforeBindThrows) {
  IncrementalSta inc(model, tech);
  EXPECT_THROW(inc.update(), std::logic_error);
  EXPECT_THROW(inc.invalidate_parasitics(0), std::logic_error);
}

TEST_F(IncrementalStaTest, TimingSizerImprovesArrivalIncrementally) {
  RandomNetlistSpec spec;
  spec.name = "sizeme";
  spec.target_cells = 300;
  spec.num_primary_inputs = 16;
  spec.target_depth = 14;
  spec.seed = 9;
  GateNetlist nl = generate_random_mapped(spec, lib);
  const ParasiticDb parasitics = generate_parasitics(nl, tech);

  TimingSizerConfig cfg;
  cfg.max_upsizes = 16;
  const TimingSizerReport report =
      size_for_timing(nl, lib, model, tech, parasitics, cfg);
  EXPECT_GT(report.upsizes, 0);
  EXPECT_LE(report.final_arrival, report.initial_arrival);
  EXPECT_TRUE(nl.invariants_ok());
  // The incremental loop must have done less propagation work than the
  // equivalent full-STA-per-trial loop.
  EXPECT_LT(report.cells_recomputed, report.full_sta_equivalent);

  // Sized netlist still times identically to a fresh engine run.
  IncrementalSta inc(model, tech);
  const StaEngine engine(model, tech);
  expect_results_identical(inc.bind(nl, parasitics),
                           engine.run(nl, parasitics), "after sizing");
}

}  // namespace
}  // namespace nsdc
