#include "sta/statprop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/yield.hpp"
#include "sta/engine.hpp"
#include "synthetic_charlib.hpp"
#include "util/rng.hpp"

namespace nsdc {
namespace {

using testfix::make_charlib;

// ------------------------------------------------------------- Clark max

TEST(ClarkMax, DominantInputWins) {
  // When A sits 10 sigma above B, max ~= A.
  const ClarkMax m = clark_max(100.0, 1.0, 0.0, 1.0, 0.0);
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(m.var, 1.0, 1e-3);
}

TEST(ClarkMax, EqualIndependentGaussians) {
  // max of two iid N(0,1): mean = 1/sqrt(pi), var = 1 - 1/pi.
  const ClarkMax m = clark_max(0.0, 1.0, 0.0, 1.0, 0.0);
  EXPECT_NEAR(m.mean, 1.0 / std::sqrt(std::numbers::pi), 1e-9);
  EXPECT_NEAR(m.var, 1.0 - 1.0 / std::numbers::pi, 1e-9);
}

TEST(ClarkMax, PerfectlyCorrelatedDegenerate) {
  const ClarkMax m = clark_max(5.0, 4.0, 3.0, 4.0, 1.0);
  EXPECT_NEAR(m.mean, 5.0, 1e-9);
  EXPECT_NEAR(m.var, 4.0, 1e-9);
}

TEST(ClarkMax, MatchesMonteCarlo) {
  // Correlated pair via shared component.
  const double rho = 0.6;
  Rng rng(7);
  MomentAccumulator acc;
  for (int i = 0; i < 400000; ++i) {
    const double shared = rng.normal();
    const double a = 1.0 + 2.0 * (std::sqrt(rho) * shared +
                                  std::sqrt(1 - rho) * rng.normal());
    const double b = 1.5 + 1.0 * (std::sqrt(rho) * shared +
                                  std::sqrt(1 - rho) * rng.normal());
    acc.add(std::max(a, b));
  }
  const ClarkMax m = clark_max(1.0, 4.0, 1.5, 1.0, rho);
  const Moments mc = acc.moments();
  EXPECT_NEAR(m.mean, mc.mu, 0.01);
  EXPECT_NEAR(std::sqrt(m.var), mc.sigma, 0.02);
}

// --------------------------------------------------------- StatisticalSta

class StatPropTest : public ::testing::Test {
 protected:
  StatPropTest()
      : charlib(make_charlib()),
        cells(CellLibrary::standard()),
        cell_model(NSigmaCellModel::fit(charlib)),
        wire_model(NSigmaWireModel::fit(charlib, cells)),
        tech(TechParams::nominal28()) {}

  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel cell_model;
  NSigmaWireModel wire_model;
  TechParams tech;
};

TEST_F(StatPropTest, SingleCellMatchesMoments) {
  GateNetlist nl("one");
  const int a = nl.add_primary_input("a");
  const int g = nl.add_cell("u", cells.by_name("INVx1"), {a}, "y");
  nl.mark_primary_output(nl.cell(g).out_net);
  ParasiticDb empty;
  StatisticalSta ssta(cell_model, wire_model, tech);
  const auto res = ssta.run(nl, empty);
  // Worst PO = Clark max of rise/fall arrivals; each must equal the cell
  // model's moments at (PI slew, zero load).
  const Moments mr = cell_model.moments("INVx1", 0, false, 10e-12, 0.0);
  const Moments mf = cell_model.moments("INVx1", 0, true, 10e-12, 0.0);
  const auto po = static_cast<std::size_t>(nl.cell(g).out_net);
  EXPECT_NEAR(res.nets[po][0].mean, mr.mu, 1e-15);
  EXPECT_NEAR(res.nets[po][0].sigma(), mr.sigma, 1e-15);
  EXPECT_NEAR(res.nets[po][1].mean, mf.mu, 1e-15);
  EXPECT_GE(res.worst.mean, std::max(mr.mu, mf.mu) - 1e-15);
}

TEST_F(StatPropTest, ChainVarianceGrowsWithCorrelation) {
  GateNetlist nl("chain");
  int net = nl.add_primary_input("a");
  for (int i = 0; i < 6; ++i) {
    const int g = nl.add_cell("u" + std::to_string(i), cells.by_name("INVx2"),
                              {net}, "w" + std::to_string(i));
    net = nl.cell(g).out_net;
  }
  nl.mark_primary_output(net);
  ParasiticDb empty;

  StatisticalSta::Config indep;
  indep.stage_correlation = 0.0;
  StatisticalSta::Config corr;
  corr.stage_correlation = 0.9;
  const auto r0 =
      StatisticalSta(cell_model, wire_model, tech, indep).run(nl, empty);
  const auto r9 =
      StatisticalSta(cell_model, wire_model, tech, corr).run(nl, empty);
  // The mean shifts only through the Clark max at the endpoint (small);
  // the variance is the quantity correlation drives.
  EXPECT_NEAR(r0.worst.mean, r9.worst.mean, 0.02 * r0.worst.mean);
  EXPECT_GT(r9.worst.sigma(), 1.5 * r0.worst.sigma());
}

TEST_F(StatPropTest, GraphMaxBelowQuantileSumAtPlus3) {
  // For weakly correlated stages, the block-based +3s must sit below the
  // path-based per-stage quantile sum (statistical averaging).
  GateNetlist nl("cmp");
  int net = nl.add_primary_input("a");
  for (int i = 0; i < 8; ++i) {
    const int g = nl.add_cell("u" + std::to_string(i), cells.by_name("NAND2x2"),
                              {net, net}, "w" + std::to_string(i));
    net = nl.cell(g).out_net;
  }
  nl.mark_primary_output(net);
  ParasiticDb empty;

  StatisticalSta::Config cfg;
  cfg.stage_correlation = 0.2;
  const auto stat =
      StatisticalSta(cell_model, wire_model, tech, cfg).run(nl, empty);

  StaEngine engine(cell_model, tech);
  const auto mean_res = engine.run(nl, empty);
  const auto path = engine.extract_critical_path(nl, mean_res);
  PathDelayCalculator calc(cell_model, wire_model);
  const auto q = calc.path_quantiles(path);
  EXPECT_LT(stat.worst.quantile(3.0), q[6]);
  EXPECT_GT(stat.worst.quantile(3.0), q[3]);  // but above the median sum
}

// ----------------------------------------------------------------- yield

TEST_F(StatPropTest, YieldInvertsQuantiles) {
  GateNetlist nl("y");
  int net = nl.add_primary_input("a");
  for (int i = 0; i < 4; ++i) {
    const int g = nl.add_cell("u" + std::to_string(i), cells.by_name("INVx2"),
                              {net}, "w" + std::to_string(i));
    net = nl.cell(g).out_net;
  }
  nl.mark_primary_output(net);
  ParasiticDb empty;
  StaEngine engine(cell_model, tech);
  const auto res = engine.run(nl, empty);
  const auto path = engine.extract_critical_path(nl, res);
  PathDelayCalculator calc(cell_model, wire_model);

  const auto q = calc.path_quantiles(path);
  EXPECT_NEAR(timing_yield(calc, path, q[6]), 0.99865, 1e-3);
  EXPECT_NEAR(timing_yield(calc, path, q[3]), 0.5, 1e-3);
  EXPECT_NEAR(timing_yield(calc, path, q[0]), 0.00135, 1e-3);
  // Outside the modeled range.
  EXPECT_LT(timing_yield(calc, path, 0.0), 1e-6);
  EXPECT_GT(timing_yield(calc, path, 1.0), 1.0 - 1e-6);
  // Inverse query round-trips.
  const double p99 = period_for_yield(calc, path, 0.99);
  EXPECT_NEAR(timing_yield(calc, path, p99), 0.99, 1e-6);
  EXPECT_THROW(period_for_yield(calc, path, 1.5), std::domain_error);
}

}  // namespace
}  // namespace nsdc
