// FlatTimingGraph contract tests: compile/round-trip equivalence against
// the source GateNetlist, CSR adjacency invariants, level contiguity,
// interned-name fidelity — and the byte-identity guarantee: StaEngine,
// NetlistMonteCarlo, and AnalyticSsta must produce bit-identical results
// on the flat path and the legacy path, at 1 and 4 threads. Plus the
// scale gate: a 100k-cell designgen netlist compiles under a wall bound,
// and the new 100k+ generators are structurally lint-clean DAGs.
#include "netlist/flatgraph.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "lint/lint.hpp"
#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/flatsta.hpp"
#include "liberty/synthlib.hpp"
#include "sta/netmc.hpp"
#include "sta/ssta_analytic.hpp"

namespace nsdc {
namespace {

std::string repo_path(const std::string& rel) {
  return std::string(NSDC_SOURCE_DIR) + "/" + rel;
}

/// StaConfig pinned to `threads` lanes with the parallel path forced on
/// (the default min_parallel_cells would keep these designs serial).
StaConfig exec_config(unsigned threads, bool use_flatgraph) {
  StaConfig cfg;
  cfg.exec.threads = threads;
  cfg.min_parallel_cells = threads > 1 ? 1 : 1u << 30;
  cfg.use_flatgraph = use_flatgraph;
  return cfg;
}

/// Owns library + models + one design + its parasitics (CellInst stores
/// CellType* into the fixture's own CellLibrary, which must outlive the
/// netlist).
struct DesignFixture {
  CellLibrary cells = CellLibrary::standard();
  TechParams tech = TechParams::nominal28();
  CharLib charlib;
  NSigmaCellModel model;
  NSigmaWireModel wire_model;
  GateNetlist nl;
  ParasiticDb spef;

  template <class BuildFn>
  explicit DesignFixture(BuildFn&& build)
      : charlib(make_synthetic_charlib()),
        model(NSigmaCellModel::fit(charlib)),
        wire_model(NSigmaWireModel::fit(charlib, cells)),
        nl(build(cells)),
        spef(generate_parasitics(nl, tech)) {}
};

GateNetlist build_c17(const CellLibrary& cells) {
  return load_bench(repo_path("data/c17.bench"), cells);
}
GateNetlist build_c432(const CellLibrary& cells) {
  return generate_iscas_like("C432", cells);
}
GateNetlist build_random500(const CellLibrary& cells) {
  RandomNetlistSpec spec;
  spec.target_cells = 500;
  spec.seed = 17;
  return generate_random_mapped(spec, cells);
}

using BuildFn = GateNetlist (*)(const CellLibrary&);
const std::vector<std::pair<const char*, BuildFn>>& design_matrix() {
  static const std::vector<std::pair<const char*, BuildFn>> designs = {
      {"c17", &build_c17},
      {"C432-like", &build_c432},
      {"random-500", &build_random500},
  };
  return designs;
}

/// Byte-level equality of everything STA consumers read from a Result.
void expect_sta_identical(const StaEngine::Result& got,
                          const StaEngine::Result& ref,
                          const std::string& what) {
  ASSERT_EQ(got.nets.size(), ref.nets.size()) << what;
  EXPECT_EQ(got.max_arrival, ref.max_arrival) << what;
  EXPECT_EQ(got.critical_net, ref.critical_net) << what;
  EXPECT_EQ(got.critical_edge, ref.critical_edge) << what;
  for (std::size_t n = 0; n < ref.nets.size(); ++n) {
    const auto& g = got.nets[n];
    const auto& r = ref.nets[n];
    ASSERT_TRUE(std::memcmp(g.arrival.data(), r.arrival.data(),
                            sizeof(g.arrival)) == 0 &&
                std::memcmp(g.slew.data(), r.slew.data(), sizeof(g.slew)) ==
                    0 &&
                g.from_pin == r.from_pin && g.reachable == r.reachable &&
                got.net_load[n] == ref.net_load[n])
        << what << ": net " << n << " diverged";
  }
}

void expect_moments_identical(const Moments& a, const Moments& b,
                              const std::string& what) {
  EXPECT_EQ(a.mu, b.mu) << what;
  EXPECT_EQ(a.sigma, b.sigma) << what;
  EXPECT_EQ(a.gamma, b.gamma) << what;
  EXPECT_EQ(a.kappa, b.kappa) << what;
}

// ------------------------------------------------ compile round-trip

TEST(FlatGraph, CompileRoundTripsEveryDesign) {
  for (const auto& [name, build] : design_matrix()) {
    const DesignFixture fx(build);
    const GateNetlist& nl = fx.nl;
    const FlatTimingGraph g = FlatTimingGraph::compile(nl);
    using Id = FlatTimingGraph::Id;

    ASSERT_EQ(g.num_cells(), nl.num_cells()) << name;
    ASSERT_EQ(g.num_nets(), nl.num_nets()) << name;
    EXPECT_EQ(g.design_name(), nl.name()) << name;
    EXPECT_EQ(g.source_generation(), nl.generation()) << name;

    // Per cell: position round-trip, out net, type, inverting, fanin
    // arcs, interned instance name.
    for (std::size_t c = 0; c < nl.num_cells(); ++c) {
      const Id pos = g.position_of_cell(static_cast<Id>(c));
      ASSERT_LT(pos, g.num_cells()) << name;
      ASSERT_EQ(g.cell_id(pos), static_cast<Id>(c)) << name;
      const CellInst& inst = nl.cell(static_cast<int>(c));
      EXPECT_EQ(g.cell_out_net(pos), static_cast<Id>(inst.out_net)) << name;
      EXPECT_EQ(g.cell_type(pos), inst.type) << name;
      EXPECT_EQ(g.inverting(pos), inst.type->inverting()) << name;
      EXPECT_EQ(g.cell_name(pos), std::string_view(inst.name)) << name;
      ASSERT_EQ(g.fanin_end(pos) - g.fanin_begin(pos),
                static_cast<Id>(inst.fanin_nets.size()))
          << name;
      for (std::size_t p = 0; p < inst.fanin_nets.size(); ++p) {
        const Id arc = g.fanin_begin(pos) + static_cast<Id>(p);
        if (inst.fanin_nets[p] < 0) {
          EXPECT_EQ(g.fanin_net(arc), FlatTimingGraph::kNoId) << name;
          EXPECT_EQ(g.fanin_sink(arc), FlatTimingGraph::kNoId) << name;
        } else {
          EXPECT_EQ(g.fanin_net(arc),
                    static_cast<Id>(inst.fanin_nets[p]))
              << name;
        }
      }
    }

    // Per net: driver position, fanout entries in net.sinks order,
    // interned names (net and pre-rendered "<inst>:<pin>" sink names).
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      const Net& net = nl.net(static_cast<int>(n));
      const Id id = static_cast<Id>(n);
      EXPECT_EQ(g.net_name(id), std::string_view(net.name)) << name;
      if (net.driver_cell < 0) {
        EXPECT_EQ(g.net_driver_pos(id), FlatTimingGraph::kNoId) << name;
      } else {
        EXPECT_EQ(g.net_driver_pos(id),
                  g.position_of_cell(static_cast<Id>(net.driver_cell)))
            << name;
      }
      ASSERT_EQ(g.fanout_end(id) - g.fanout_begin(id),
                static_cast<Id>(net.sinks.size()))
          << name;
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        const Id f = g.fanout_begin(id) + static_cast<Id>(s);
        const NetSink& sink = net.sinks[s];
        EXPECT_EQ(g.fanout_pos(f),
                  g.position_of_cell(static_cast<Id>(sink.cell)))
            << name;
        EXPECT_EQ(g.fanout_pin(f), static_cast<Id>(sink.pin)) << name;
        EXPECT_EQ(g.sink_name(f),
                  std::string_view(
                      sink_pin_name(nl.cell(sink.cell), sink.pin)))
            << name;
      }
    }

    // Boundary lists match (PO list comes from the generation cache).
    ASSERT_EQ(g.primary_inputs().size(), nl.primary_inputs().size()) << name;
    for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
      EXPECT_EQ(g.primary_inputs()[i],
                static_cast<Id>(nl.primary_inputs()[i]))
          << name;
    }
    const auto& pos = nl.primary_outputs();
    ASSERT_EQ(g.primary_outputs().size(), pos.size()) << name;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      EXPECT_EQ(g.primary_outputs()[i], static_cast<Id>(pos[i])) << name;
    }
  }
}

TEST(FlatGraph, LevelContiguityMatchesLevelization) {
  for (const auto& [name, build] : design_matrix()) {
    const DesignFixture fx(build);
    const FlatTimingGraph g = FlatTimingGraph::compile(fx.nl);
    const auto& lev = fx.nl.levelization();
    using Id = FlatTimingGraph::Id;
    ASSERT_EQ(g.num_levels(), static_cast<Id>(lev.levels.size())) << name;
    Id expect_begin = 0;
    for (std::size_t l = 0; l < lev.levels.size(); ++l) {
      const Id li = static_cast<Id>(l);
      EXPECT_EQ(g.level_begin(li), expect_begin) << name;
      ASSERT_EQ(g.level_end(li) - g.level_begin(li),
                static_cast<Id>(lev.levels[l].size()))
          << name;
      // Positions replay the per-level ascending-cell-index order the
      // legacy engine's parallel_for visits.
      for (std::size_t i = 0; i < lev.levels[l].size(); ++i) {
        EXPECT_EQ(g.cell_id(g.level_begin(li) + static_cast<Id>(i)),
                  static_cast<Id>(lev.levels[l][i]))
            << name;
      }
      expect_begin = g.level_end(li);
    }
    EXPECT_EQ(expect_begin, g.num_cells()) << name;
  }
}

// CSR structural invariants: offsets are monotone and exhaustive, and the
// arc -> fanout-entry mapping is a bijection onto the connected arcs.
TEST(FlatGraph, CsrAdjacencyProperties) {
  for (const auto& [name, build] : design_matrix()) {
    const DesignFixture fx(build);
    const FlatTimingGraph g = FlatTimingGraph::compile(fx.nl);
    using Id = FlatTimingGraph::Id;

    // Fanin offsets: monotone, covering [0, num_arcs).
    EXPECT_EQ(g.fanin_begin(0), 0u) << name;
    for (Id pos = 0; pos < g.num_cells(); ++pos) {
      EXPECT_LE(g.fanin_begin(pos), g.fanin_end(pos)) << name;
      if (pos + 1 < g.num_cells()) {
        EXPECT_EQ(g.fanin_end(pos), g.fanin_begin(pos + 1)) << name;
      }
    }
    EXPECT_EQ(g.fanin_end(g.num_cells() - 1), g.num_arcs()) << name;

    // Fanout offsets: monotone, covering [0, num_fanouts).
    EXPECT_EQ(g.fanout_begin(0), 0u) << name;
    for (Id n = 0; n < g.num_nets(); ++n) {
      EXPECT_LE(g.fanout_begin(n), g.fanout_end(n)) << name;
      if (n + 1 < g.num_nets()) {
        EXPECT_EQ(g.fanout_end(n), g.fanout_begin(n + 1)) << name;
      }
    }
    EXPECT_EQ(g.fanout_end(g.num_nets() - 1), g.num_fanouts()) << name;

    // fanin_sink is a bijection: every connected arc maps to a distinct
    // fanout entry that points straight back at it.
    std::set<Id> seen;
    Id connected = 0;
    for (Id pos = 0; pos < g.num_cells(); ++pos) {
      for (Id arc = g.fanin_begin(pos); arc < g.fanin_end(pos); ++arc) {
        const Id f = g.fanin_sink(arc);
        if (g.fanin_net(arc) == FlatTimingGraph::kNoId) {
          EXPECT_EQ(f, FlatTimingGraph::kNoId) << name;
          continue;
        }
        ++connected;
        ASSERT_LT(f, g.num_fanouts()) << name;
        EXPECT_TRUE(seen.insert(f).second) << name << ": duplicate entry";
        EXPECT_EQ(g.fanout_pos(f), pos) << name;
        EXPECT_EQ(g.fanout_pin(f), arc - g.fanin_begin(pos)) << name;
        // The entry lives in the fanin net's CSR range.
        const Id net = g.fanin_net(arc);
        EXPECT_GE(f, g.fanout_begin(net)) << name;
        EXPECT_LT(f, g.fanout_end(net)) << name;
        // A level-respecting edge: source driver strictly below sink.
        const Id drv = g.net_driver_pos(net);
        if (drv != FlatTimingGraph::kNoId) {
          EXPECT_LT(drv, pos) << name << ": edge violates level order";
        }
      }
    }
    EXPECT_EQ(connected, g.num_fanouts()) << name;
  }
}

TEST(FlatGraph, StaleGraphIsRejected) {
  DesignFixture fx(&build_c17);
  const FlatTimingGraph g = FlatTimingGraph::compile(fx.nl);
  const StaEngine engine(fx.model, fx.tech);
  // Any edit bumps generation() and invalidates the compiled snapshot.
  fx.nl.set_cell_type(0, fx.cells.by_func(fx.nl.cell(0).type->func(), 2));
  EXPECT_THROW(engine.run(g, fx.nl, fx.spef), std::invalid_argument);
}

TEST(FlatGraph, MemoryBytesIsPopulated) {
  const DesignFixture fx(&build_c432);
  const FlatTimingGraph g = FlatTimingGraph::compile(fx.nl);
  // SoA arrays + arena: at least a few bytes per cell, and bounded well
  // under the pointer-heavy legacy representation's per-cell footprint.
  EXPECT_GT(g.memory_bytes(), static_cast<std::size_t>(g.num_cells()) * 16);
  EXPECT_LT(g.memory_bytes(), static_cast<std::size_t>(g.num_cells()) * 4096);
}

// ------------------------------------------------ engine byte-identity

TEST(FlatGraphIdentity, StaEngineFlatMatchesLegacyAt1And4Threads) {
  for (const auto& [name, build] : design_matrix()) {
    const DesignFixture fx(build);
    for (unsigned threads : {1u, 4u}) {
      const StaEngine legacy(fx.model, fx.tech,
                             exec_config(threads, /*use_flatgraph=*/false));
      const StaEngine flat(fx.model, fx.tech,
                           exec_config(threads, /*use_flatgraph=*/true));
      expect_sta_identical(flat.run(fx.nl, fx.spef),
                           legacy.run(fx.nl, fx.spef),
                           std::string(name) + " @" +
                               std::to_string(threads) + "t");
    }
  }
}

TEST(FlatGraphIdentity, NetMcFlatMatchesLegacyAt1And4Threads) {
  const DesignFixture fx(&build_c432);
  McConfig mc;
  mc.samples = 192;
  mc.seed = 99;
  for (unsigned threads : {1u, 4u}) {
    mc.threads = threads;
    NetMcOptions legacy_opt, flat_opt;
    legacy_opt.sta.use_flatgraph = false;
    flat_opt.sta.use_flatgraph = true;
    const NetlistMonteCarlo legacy(fx.model, fx.wire_model, fx.tech,
                                   legacy_opt);
    const NetlistMonteCarlo flat(fx.model, fx.wire_model, fx.tech, flat_opt);
    const auto ref = legacy.run(fx.nl, fx.spef, mc);
    const auto got = flat.run(fx.nl, fx.spef, mc);
    const std::string what = "netmc @" + std::to_string(threads) + "t";
    ASSERT_EQ(got.nets.size(), ref.nets.size()) << what;
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (int e = 0; e < 2; ++e) {
        const auto& a = got.nets[n][static_cast<std::size_t>(e)];
        const auto& b = ref.nets[n][static_cast<std::size_t>(e)];
        EXPECT_EQ(a.count, b.count) << what;
        expect_moments_identical(a.moments, b.moments, what);
      }
    }
    ASSERT_EQ(got.po_nets, ref.po_nets) << what;
    ASSERT_EQ(got.po_samples.size(), ref.po_samples.size()) << what;
    for (std::size_t p = 0; p < ref.po_samples.size(); ++p) {
      EXPECT_EQ(got.po_samples[p], ref.po_samples[p]) << what;
    }
    EXPECT_EQ(got.circuit_samples, ref.circuit_samples) << what;
    EXPECT_EQ(got.worst_po, ref.worst_po) << what;
    expect_moments_identical(got.worst_po_moments, ref.worst_po_moments,
                             what);
  }
}

TEST(FlatGraphIdentity, AnalyticSstaFlatMatchesLegacyAt1And4Threads) {
  const DesignFixture fx(&build_c432);
  for (unsigned threads : {1u, 4u}) {
    AnalyticSstaOptions legacy_opt, flat_opt;
    legacy_opt.sta = exec_config(threads, /*use_flatgraph=*/false);
    flat_opt.sta = exec_config(threads, /*use_flatgraph=*/true);
    const AnalyticSsta legacy(fx.model, fx.wire_model, fx.tech, legacy_opt);
    const AnalyticSsta flat(fx.model, fx.wire_model, fx.tech, flat_opt);
    const auto ref = legacy.run(fx.nl, fx.spef);
    const auto got = flat.run(fx.nl, fx.spef);
    const std::string what = "ssta @" + std::to_string(threads) + "t";
    ASSERT_EQ(got.nets.size(), ref.nets.size()) << what;
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (int e = 0; e < 2; ++e) {
        const auto& a = got.nets[n][static_cast<std::size_t>(e)];
        const auto& b = ref.nets[n][static_cast<std::size_t>(e)];
        EXPECT_EQ(a.reachable, b.reachable) << what;
        expect_moments_identical(a.moments, b.moments, what);
      }
    }
    ASSERT_EQ(got.po_nets, ref.po_nets) << what;
    EXPECT_EQ(got.worst_po, ref.worst_po) << what;
    expect_moments_identical(got.worst_po_moments, ref.worst_po_moments,
                             what);
    EXPECT_EQ(got.worst_po_quantiles, ref.worst_po_quantiles) << what;
  }
}

TEST(FlatGraphIdentity, IntervalPropagationFlatMatchesLegacy) {
  const DesignFixture fx(&build_c432);
  const StaEngine engine(fx.model, fx.tech);
  const StaEngine::Result annotated = engine.run(fx.nl, fx.spef);
  AnalysisInput input;
  input.netlist = &fx.nl;
  input.parasitics = &fx.spef;
  input.charlib = &fx.charlib;
  input.cell_model = &fx.model;
  input.wire_model = &fx.wire_model;
  input.tech = &fx.tech;
  AnalysisOptions legacy_opt, flat_opt;
  legacy_opt.use_flatgraph = false;
  flat_opt.use_flatgraph = true;
  const IntervalResult ref = propagate_intervals(input, legacy_opt, annotated);
  const IntervalResult got = propagate_intervals(input, flat_opt, annotated);
  ASSERT_EQ(got.nets.size(), ref.nets.size());
  for (std::size_t n = 0; n < ref.nets.size(); ++n) {
    const auto& a = got.nets[n];
    const auto& b = ref.nets[n];
    EXPECT_EQ(a.reachable, b.reachable) << n;
    for (int e = 0; e < 2; ++e) {
      EXPECT_EQ(a.arrival[static_cast<std::size_t>(e)].lo,
                b.arrival[static_cast<std::size_t>(e)].lo)
          << n;
      EXPECT_EQ(a.arrival[static_cast<std::size_t>(e)].hi,
                b.arrival[static_cast<std::size_t>(e)].hi)
          << n;
      EXPECT_EQ(a.slew[static_cast<std::size_t>(e)].lo,
                b.slew[static_cast<std::size_t>(e)].lo)
          << n;
      EXPECT_EQ(a.slew[static_cast<std::size_t>(e)].hi,
                b.slew[static_cast<std::size_t>(e)].hi)
          << n;
    }
  }
  ASSERT_EQ(got.po_nets, ref.po_nets);
  EXPECT_EQ(got.max_arrival.lo, ref.max_arrival.lo);
  EXPECT_EQ(got.max_arrival.hi, ref.max_arrival.hi);
}

// ------------------------------------------------ scale generators

/// Structural rules only: the scale smoke cares about DAG well-formedness,
/// not charlib-domain warnings (which need a charlib anyway).
int structural_diag_count(const GateNetlist& nl) {
  static const std::set<std::string> structural = {
      "net.unconnected-pin", "net.comb-loop",       "net.multi-driver",
      "net.undriven",        "net.dangling-output", "net.driver-mismatch"};
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (structural.count(d.rule)) ++n;
  }
  return n;
}

TEST(FlatGraphScale, NewGeneratorsAreStructurallyCleanDags) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist tm = generate_tiled_multiplier_array(5, 3, cells);
  const GateNetlist xb = generate_wide_crossbar(12, 9, cells);
  const GateNetlist dc = generate_divider_chain(4, 3, cells);
  for (const GateNetlist* nl : {&tm, &xb, &dc}) {
    EXPECT_EQ(structural_diag_count(*nl), 0) << nl->name();
    EXPECT_NO_THROW(nl->levelization()) << nl->name();  // acyclic
    const DesignStats st = design_stats(*nl);
    EXPECT_EQ(st.cells, nl->num_cells()) << nl->name();
    EXPECT_EQ(st.nets, nl->num_nets()) << nl->name();
    EXPECT_GT(st.avg_fanout, 0.5) << nl->name();
    EXPECT_GT(st.max_level, 0) << nl->name();
    const std::string line = design_stats_line(*nl);
    EXPECT_NE(line.find("design_stats name=" + nl->name()), std::string::npos);
    EXPECT_NE(line.find("cells=" + std::to_string(nl->num_cells())),
              std::string::npos);
    EXPECT_NE(line.find("avg_fanout="), std::string::npos);
  }
  // Tiling scales cells linearly; the chain scales depth linearly.
  EXPECT_GT(generate_tiled_multiplier_array(5, 6, cells).num_cells(),
            2 * tm.num_cells() - 10);
  EXPECT_GT(design_stats(generate_divider_chain(4, 6, cells)).max_level,
            static_cast<int>(1.8 * design_stats(dc).max_level));
}

TEST(FlatGraphScale, HundredKCellDesignCompilesUnderWallBound) {
  const CellLibrary cells = CellLibrary::standard();
  // ~103k cells: 144x144 AND-OR crossbar.
  const GateNetlist nl = generate_wide_crossbar(144, 144, cells);
  ASSERT_GE(nl.num_cells(), 100000u);
  nl.levelization();  // levelize outside the timed region, like engines do
  const auto t0 = std::chrono::steady_clock::now();
  const FlatTimingGraph g = FlatTimingGraph::compile(nl);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(g.num_cells(), nl.num_cells());
  // Native compiles run in well under a second; the bound is generous for
  // sanitizer builds while still catching superlinear blowups.
  EXPECT_LT(seconds, 30.0);
}

}  // namespace
}  // namespace nsdc
