#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace nsdc {
namespace {

TEST(DenseMatrix, Solve2x2) {
  DenseMatrix a(2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  ASSERT_TRUE(a.lu_factor());
  std::vector<double> b{5.0, 10.0};
  a.lu_solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseMatrix, PivotingRequired) {
  // Zero on the diagonal forces a row swap.
  DenseMatrix a(2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  ASSERT_TRUE(a.lu_factor());
  std::vector<double> b{2.0, 3.0};
  a.lu_solve(b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(DenseMatrix, SingularDetected) {
  DenseMatrix a(2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_FALSE(a.lu_factor());
}

TEST(DenseMatrix, SetZero) {
  DenseMatrix a(2);
  a(0, 0) = 5.0;
  a.set_zero();
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
}

class RandomSystemSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSystemSweep, ResidualIsTiny) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  DenseMatrix a(n);
  std::vector<double> a_copy(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double v = rng.uniform(-1, 1) + (r == c ? 2.0 : 0.0);
      a(r, c) = v;
      a_copy[r * n + c] = v;
    }
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-5, 5);
  std::vector<double> b(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b[r] += a_copy[r * n + c] * x_true[c];
  }
  ASSERT_TRUE(a.lu_factor());
  a.lu_solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystemSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace nsdc
