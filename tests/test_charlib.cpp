#include "liberty/charlib.hpp"

#include <gtest/gtest.h>

#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

using testfix::make_charlib;

TEST(CharLib, SerializeRoundTrip) {
  const CharLib lib = make_charlib();
  const CharLib back = CharLib::deserialize(lib.serialize());
  EXPECT_EQ(back.arcs().size(), lib.arcs().size());
  EXPECT_EQ(back.wire_observations().size(), lib.wire_observations().size());
  const auto& a0 = lib.arcs().front();
  const auto& b0 = back.arcs().front();
  EXPECT_EQ(b0.cell, a0.cell);
  EXPECT_EQ(b0.in_rising, a0.in_rising);
  ASSERT_EQ(b0.grid.size(), a0.grid.size());
  for (std::size_t i = 0; i < a0.grid.size(); ++i) {
    EXPECT_NEAR(b0.grid[i].moments.mu, a0.grid[i].moments.mu,
                1e-9 * a0.grid[i].moments.mu);
    EXPECT_NEAR(b0.grid[i].moments.kappa, a0.grid[i].moments.kappa, 1e-9);
    for (int lv = 0; lv < 7; ++lv) {
      EXPECT_NEAR(b0.grid[i].quantiles[static_cast<std::size_t>(lv)],
                  a0.grid[i].quantiles[static_cast<std::size_t>(lv)], 1e-24);
    }
  }
  const auto& w0 = lib.wire_observations().front();
  const auto& wb = back.wire_observations().front();
  EXPECT_EQ(wb.driver_cell, w0.driver_cell);
  EXPECT_NEAR(wb.variability(), w0.variability(), 1e-12);
}

TEST(CharLib, DeserializeRejectsGarbage) {
  EXPECT_THROW(CharLib::deserialize("not a charlib"), std::runtime_error);
  EXPECT_THROW(CharLib::deserialize("nsdc_charlib 1\narc A 0 R\n"),
               std::runtime_error);
}

TEST(CharLib, ArcLookup) {
  const CharLib lib = make_charlib();
  EXPECT_TRUE(lib.has_arc("INVx1", 0, true));
  EXPECT_FALSE(lib.has_arc("INVx1", 1, true));  // only pin 0 characterized
  EXPECT_NO_THROW(lib.arc("INVx1", 0, false));
  EXPECT_THROW(lib.arc("GHOSTx1", 0, true), std::out_of_range);
}

TEST(CharLib, CellVariabilityAveragesDirections) {
  const CharLib lib = make_charlib();
  const double v = lib.cell_variability("INVx1");
  const double vr = lib.arc("INVx1", 0, true).ref().moments.variability();
  const double vf = lib.arc("INVx1", 0, false).ref().moments.variability();
  EXPECT_NEAR(v, 0.5 * (vr + vf), 1e-12);
  EXPECT_THROW(lib.cell_variability("GHOSTx1"), std::out_of_range);
}

TEST(CharLib, SaveLoadFile) {
  const CharLib lib = make_charlib();
  const std::string path = ::testing::TempDir() + "nsdc_charlib_test.txt";
  ASSERT_TRUE(lib.save(path));
  const auto back = CharLib::load(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->arcs().size(), lib.arcs().size());
  EXPECT_FALSE(CharLib::load("/nonexistent/charlib.txt").has_value());
}

TEST(CharLib, ArcKeyFormat) {
  EXPECT_EQ(ArcCharData::arc_key("INVx1", 0, true), "INVx1/0/R");
  EXPECT_EQ(ArcCharData::arc_key("NAND2x4", 1, false), "NAND2x4/1/F");
}

TEST(CharConfig, Validation) {
  const TechParams tech = TechParams::nominal28();
  CharConfig bad;
  bad.load_grid_rel = {2.0, 4.0};  // must start at 1.0
  EXPECT_THROW(CellCharacterizer(tech, bad), std::invalid_argument);
  CharConfig tiny;
  tiny.slew_grid = {10e-12};
  EXPECT_THROW(CellCharacterizer(tech, tiny), std::invalid_argument);
}

TEST(CharConfig, CRefScalesWithStrength) {
  const TechParams tech = TechParams::nominal28();
  const CellCharacterizer ch(tech, CharConfig{});
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_NEAR(ch.c_ref(lib.by_name("INVx1")), 0.4e-15, 1e-21);
  EXPECT_NEAR(ch.c_ref(lib.by_name("INVx8")), 3.2e-15, 1e-21);
}

}  // namespace
}  // namespace nsdc
