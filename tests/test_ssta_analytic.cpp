// Analytic four-moment SSTA engine tests: moment-by-moment equivalence
// against the NetlistMonteCarlo golden within sample-count-derived
// standard-error bounds (never hand-tuned epsilons), N-sigma quantile
// agreement, byte-identity across thread counts, property tests of the
// moment algebra, and a golden c17 CSV regression. Regenerate the golden
// after an *intentional* model change with:
//   NSDC_REGEN_GOLDEN=1 ./tests/test_ssta_analytic
#include "sta/ssta_analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/engine.hpp"
#include "sta/netmc.hpp"
#include "stats/quantiles.hpp"
#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

std::string repo_path(const std::string& rel) {
  return std::string(NSDC_SOURCE_DIR) + "/" + rel;
}

// Sanitizer builds run this suite for the concurrency/numeric sweep; the
// statistical acceptance numbers are asserted in the native build, where a
// 100k-sample MC reference is cheap and wall-clock ratios mean something.
#if defined(NSDC_SANITIZED_BUILD) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
#define NSDC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define NSDC_SANITIZED 1
#endif
#endif
#ifndef NSDC_SANITIZED
#define NSDC_SANITIZED 0
#endif

constexpr int kMomentSamples = NSDC_SANITIZED ? 4000 : 20000;
constexpr int kQuantileSamples = NSDC_SANITIZED ? 8000 : 100000;

// Acceptance multiplier on every standard-error bound. The SE itself is
// derived from the MC sample count; the multiplier covers (a) the
// simultaneous comparison over hundreds of net/edge statistics (Bonferroni
// at ~1e3 comparisons needs z ~ 4.5) and (b) the engine's documented
// approximation residue (first-order-only shared-local correlation at the
// statistical max), which the equivalence contract requires to stay inside
// the same band as the sampling noise.
constexpr double kZ = 6.0;

double se_mu(const Moments& m, double n) { return m.sigma / std::sqrt(n); }

// SE of the sample standard deviation: s * sqrt((kappa + 2) / (4n)), with
// the excess kurtosis floored away from the degenerate -2.
double se_sigma(const Moments& m, double n) {
  return m.sigma * std::sqrt(std::max(m.kappa + 2.0, 0.2) / (4.0 * n));
}

double se_gamma(double n) { return std::sqrt(6.0 / n); }
double se_kappa(double n) { return std::sqrt(24.0 / n); }

// SE of an empirical p-quantile: sqrt(p(1-p)/n) / f(q), with the density
// estimated from the MC moment summary's Cornish-Fisher fit.
double se_quantile(const Moments& mc_moments, int level, double n) {
  const double p = sigma_level_probability(level);
  const double f = cornish_fisher_density_at(mc_moments, level);
  if (!(f > 0.0)) return mc_moments.sigma;  // degenerate: full-sigma slack
  return std::sqrt(p * (1.0 - p) / n) / f;
}

struct Fixture {
  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel model;
  NSigmaWireModel wire_model;
  TechParams tech;

  // Only make_charlib() carries wire Monte-Carlo observations, so the wire
  // model always fits from it; unknown driver/load families fall back to the
  // fitted family average. The cell model fits whichever charlib covers the
  // design's cells.
  explicit Fixture(bool full = true)
      : charlib(full ? testfix::make_full_charlib() : testfix::make_charlib()),
        cells(CellLibrary::standard()),
        model(NSigmaCellModel::fit(charlib)),
        wire_model(NSigmaWireModel::fit(testfix::make_charlib(), cells)),
        tech(TechParams::nominal28()) {}

  AnalyticSsta::Result run_analytic(const GateNetlist& nl,
                                    const ParasiticDb& spef,
                                    AnalyticSstaOptions opt = {}) const {
    const AnalyticSsta ssta(model, wire_model, tech, opt);
    return ssta.run(nl, spef);
  }

  NetlistMonteCarlo::Result run_mc(const GateNetlist& nl,
                                   const ParasiticDb& spef, int samples,
                                   unsigned threads = 0,
                                   NetMcOptions opt = {}) const {
    const NetlistMonteCarlo mc(model, wire_model, tech, opt);
    McConfig cfg;
    cfg.samples = samples;
    cfg.seed = 0x55A11;
    cfg.threads = threads;
    return mc.run(nl, spef, cfg);
  }
};

// Per-net-edge moment comparison within SE-derived bounds.
void expect_moment_equivalence(const AnalyticSsta::Result& an,
                               const NetlistMonteCarlo::Result& mc,
                               double n_samples, const std::string& what) {
  ASSERT_EQ(an.nets.size(), mc.nets.size()) << what;
  int significant_gamma = 0;
  for (std::size_t n = 0; n < mc.nets.size(); ++n) {
    for (std::size_t e = 0; e < 2; ++e) {
      const auto& m_mc = mc.nets[n][e];
      const auto& m_an = an.nets[n][e];
      ASSERT_EQ(m_an.reachable, m_mc.count > 0) << what << " net " << n;
      if (m_mc.count == 0) continue;
      const Moments& g = m_mc.moments;
      const Moments& a = m_an.moments;
      if (g.sigma == 0.0) {
        // Primary inputs: exactly zero arrival on both sides.
        EXPECT_EQ(a.mu, g.mu) << what << " net " << n;
        EXPECT_EQ(a.sigma, 0.0) << what << " net " << n;
        continue;
      }
      EXPECT_NEAR(a.mu, g.mu, kZ * se_mu(g, n_samples) + 1e-18)
          << what << " mu, net " << n << " edge " << e;
      EXPECT_NEAR(a.sigma, g.sigma, kZ * se_sigma(g, n_samples) + 1e-18)
          << what << " sigma, net " << n << " edge " << e;
      // gamma/kappa: direction consistency wherever the MC statistic is
      // significant at the same kZ level.
      if (std::fabs(g.gamma) > kZ * se_gamma(n_samples)) {
        ++significant_gamma;
        EXPECT_GT(a.gamma * g.gamma, 0.0)
            << what << " gamma sign, net " << n << " edge " << e
            << " (mc=" << g.gamma << " an=" << a.gamma << ")";
      }
      if (std::fabs(g.kappa) > kZ * se_kappa(n_samples)) {
        EXPECT_GT(a.kappa * g.kappa, 0.0)
            << what << " kappa sign, net " << n << " edge " << e
            << " (mc=" << g.kappa << " an=" << a.kappa << ")";
      }
    }
  }
  // The comparison must actually exercise the skewness direction check
  // somewhere — the synthetic library is built skewed.
  EXPECT_GT(significant_gamma, 0) << what;
}

// ---------------------------------------------- MC equivalence: moments --

TEST(SstaAnalyticEquivalence, MomentsMatchMcOnC17) {
  const Fixture f;
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);
  const auto an = f.run_analytic(nl, spef);
  const auto mc = f.run_mc(nl, spef, kMomentSamples);
  expect_moment_equivalence(an, mc, kMomentSamples, "c17");
}

TEST(SstaAnalyticEquivalence, MomentsMatchMcOnC432Like) {
  const Fixture f;
  const GateNetlist nl = generate_iscas_like("C432", f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);
  const auto an = f.run_analytic(nl, spef);
  const auto mc = f.run_mc(nl, spef, kMomentSamples);
  expect_moment_equivalence(an, mc, kMomentSamples, "C432-like");
}

TEST(SstaAnalyticEquivalence, MomentsMatchMcOnRandomMapped) {
  const Fixture f;
  RandomNetlistSpec spec;
  spec.target_cells = 500;
  spec.seed = 42;
  const GateNetlist nl = generate_random_mapped(spec, f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);
  const auto an = f.run_analytic(nl, spef);
  const auto mc = f.run_mc(nl, spef, kMomentSamples);
  expect_moment_equivalence(an, mc, kMomentSamples, "random-500");
}

// -------------------------------------------- MC equivalence: quantiles --

// The analytic engine reports PO quantiles through the same four-moment
// Cornish-Fisher map the MC summary uses, but the MC result's po_quantiles
// are *empirical* (read off the stored sample set). Comparing the two
// therefore mixes two error sources with very different structure:
//
//  (a) moment estimation noise — shrinks as 1/sqrt(n) and is what the
//      equivalence contract is really about, and
//  (b) the Cornish-Fisher reconstruction residue — a four-moment expansion
//      cannot reproduce an arbitrary tail exactly, and at the kurtosis this
//      library produces (kappa up to ~2 at deep POs) the |z|=3 endpoints
//      carry an irreducible model error of a few tenths of a sigma that no
//      amount of sampling removes.
//
// So the check is split: (A) pushes the MC *sampled moments* through the
// identical cornish_fisher_quantile functional, cancelling (b) exactly, so
// its bound is the moment-SE propagated through that functional (numeric
// sensitivities) plus the engine's PO-fold residue: the final rise/fall
// statistical max at a PO folds two near-identical, highly correlated
// edges, where the first-order local-correlation treatment leaves a
// mean/kurtosis residue (measured <= 0.11 sigma in mu, <= 0.27 in kappa on
// the 500-cell design) that sampling cannot explain. (B) then compares
// against the empirical quantiles, which additionally exposes (b).
//
// Both use the same stated tolerance kSstaTol * (1 + z^2/3) * sigma on top
// of their respective sampling SEs: at z = 0 it is dominated by the
// PO-fold mu residue, at |z| = 3 by the kappa residue (A) and the CF tail
// reconstruction (B); the quadratic growth mirrors the z^2 weighting of
// the kurtosis term in the expansion itself. Measured worst cases are
// 0.11 sigma (z=0) and 0.42 sigma (|z|=3) against bounds of 0.15 and 0.60.
constexpr double kSstaTol = 0.15;

// Propagate the per-moment standard errors through cornish_fisher_quantile
// by finite differences on gamma/kappa (mu enters with sensitivity 1 and
// sigma scales the standardized quantile, both handled analytically).
double se_cf_quantile(const Moments& m, int level, double n) {
  const double z = static_cast<double>(level);
  const double std_q = (m.sigma > 0.0)
                           ? (cornish_fisher_quantile(m, z) - m.mu) / m.sigma
                           : 0.0;
  auto bump = [&](double dg, double dk) {
    Moments b = m;
    b.gamma += dg;
    b.kappa += dk;
    return cornish_fisher_quantile(b, z);
  };
  const double hg = 0.05, hk = 0.05;
  const double dq_dgamma = (bump(hg, 0.0) - bump(-hg, 0.0)) / (2.0 * hg);
  const double dq_dkappa = (bump(0.0, hk) - bump(0.0, -hk)) / (2.0 * hk);
  const double var = se_mu(m, n) * se_mu(m, n) +
                     std_q * std_q * se_sigma(m, n) * se_sigma(m, n) +
                     dq_dgamma * dq_dgamma * se_gamma(n) * se_gamma(n) +
                     dq_dkappa * dq_dkappa * se_kappa(n) * se_kappa(n);
  return std::sqrt(var);
}

void expect_quantile_equivalence(const Fixture& f, const GateNetlist& nl,
                                 const std::string& what) {
  const ParasiticDb spef = generate_parasitics(nl, f.tech);
  // Single-threaded on both sides so the acceptance wall-time ratio is a
  // like-for-like compute comparison.
  AnalyticSstaOptions aopt;
  aopt.sta.exec.threads = 1;
  // Warm-up pass: the wall-time acceptance below compares steady-state
  // compute, not one-time quadrature-table builds and first-touch faults.
  (void)f.run_analytic(nl, spef, aopt);
  const auto an = f.run_analytic(nl, spef, aopt);
  const auto mc = f.run_mc(nl, spef, kQuantileSamples, 1);
  ASSERT_EQ(an.po_nets, mc.po_nets) << what;
  const auto n = static_cast<double>(kQuantileSamples);
  for (std::size_t p = 0; p < mc.po_nets.size(); ++p) {
    const Moments& g = mc.po_moments[p];
    for (int lv = 0; lv < 7; ++lv) {
      const auto l = static_cast<std::size_t>(lv);
      const int z = lv - 3;
      const double stated = kSstaTol * (1.0 + z * z / 3.0) * g.sigma;
      // (A) Same functional, sampled vs analytic moments: moment-SE bounds
      // propagated through the quantile map, plus the PO-fold residue.
      const double cf_mc = cornish_fisher_quantile(g, static_cast<double>(z));
      EXPECT_NEAR(an.po_quantiles[p][l], cf_mc,
                  kZ * se_cf_quantile(g, z, n) + stated + 1e-18)
          << what << " CF-functional, po " << mc.po_nets[p] << " level " << z;
      // (B) Empirical quantile: sampling SE plus the stated tolerance,
      // which here also covers the CF tail reconstruction error.
      EXPECT_NEAR(an.po_quantiles[p][l], mc.po_quantiles[p][l],
                  kZ * se_quantile(g, z, n) + stated + 1e-18)
          << what << " empirical, po " << mc.po_nets[p] << " level " << z;
    }
  }
#if !NSDC_SANITIZED
  // Acceptance: >= 100x lower wall time than the 100k-sample reference.
  EXPECT_GE(mc.runtime_seconds, 100.0 * an.runtime_seconds) << what;
#endif
}

TEST(SstaAnalyticEquivalence, QuantilesMatchMcOnC17) {
  const Fixture f;
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), f.cells);
  expect_quantile_equivalence(f, nl, "c17");
}

TEST(SstaAnalyticEquivalence, QuantilesMatchMcOnRandomMapped500) {
  const Fixture f;
  RandomNetlistSpec spec;
  spec.target_cells = 500;
  spec.seed = 42;
  const GateNetlist nl = generate_random_mapped(spec, f.cells);
  ASSERT_GE(nl.num_cells(), 500u);
  expect_quantile_equivalence(f, nl, "random-500");
}

// ------------------------------------------------------- byte identity --

TEST(SstaAnalyticDeterminism, ByteIdenticalAcrossThreadCounts) {
  const Fixture f;
  RandomNetlistSpec spec;
  spec.target_cells = 300;
  spec.seed = 7;
  const GateNetlist nl = generate_random_mapped(spec, f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);

  auto run_at = [&](unsigned threads) {
    AnalyticSstaOptions opt;
    opt.sta.exec.threads = threads;
    opt.sta.min_parallel_cells = 1;  // force the pool even on small designs
    return f.run_analytic(nl, spef, opt);
  };
  const auto ref = run_at(1);
  for (unsigned t : {4u, 16u}) {
    const auto got = run_at(t);
    ASSERT_EQ(got.nets.size(), ref.nets.size());
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (std::size_t e = 0; e < 2; ++e) {
        ASSERT_EQ(got.nets[n][e].reachable, ref.nets[n][e].reachable);
        ASSERT_EQ(got.nets[n][e].moments.mu, ref.nets[n][e].moments.mu)
            << t << " threads, net " << n;
        ASSERT_EQ(got.nets[n][e].moments.sigma, ref.nets[n][e].moments.sigma)
            << t << " threads, net " << n;
        ASSERT_EQ(got.nets[n][e].moments.gamma, ref.nets[n][e].moments.gamma)
            << t << " threads, net " << n;
        ASSERT_EQ(got.nets[n][e].moments.kappa, ref.nets[n][e].moments.kappa)
            << t << " threads, net " << n;
      }
    }
    ASSERT_EQ(got.worst_po, ref.worst_po);
    for (std::size_t l = 0; l < 7; ++l) {
      ASSERT_EQ(got.worst_po_quantiles[l], ref.worst_po_quantiles[l]);
      ASSERT_EQ(got.circuit_quantiles[l], ref.circuit_quantiles[l]);
    }
  }
}

// ------------------------------------------------- moment-algebra props --

TEST(SstaMomentAlgebra, SeriesSumMatchesClosedFormCumulantAddition) {
  // With zero die-to-die share the stages are fully independent, so the
  // propagated cumulants must equal the closed-form cumulant sums exactly.
  Moments m1{40e-12, 10e-12, 0.9, 1.4};
  Moments m2{55e-12, 12e-12, -0.4, 0.8};
  const ssta::Stage s1 = ssta::cell_stage(m1, 1.0, true);
  const ssta::Stage s2 = ssta::cell_stage(m2, 1.0, true);

  ssta::Arrival a;
  a.ensure_locals(2);
  a.add_stage(s1, ssta::Domain::kCell, 0.0, 1.0, 0);
  a.add_stage(s2, ssta::Domain::kCell, 0.0, 1.0, 1);
  const Moments got = a.moments();

  const double k2 = s1.k2 + s2.k2;
  const double k3 = s1.k3 + s2.k3;
  const double k4 = s1.k4 + s2.k4;
  EXPECT_NEAR(got.mu, s1.mean + s2.mean, 1e-24);
  EXPECT_NEAR(got.sigma, std::sqrt(k2), 1e-12 * std::sqrt(k2));
  EXPECT_NEAR(got.gamma, k3 / (k2 * std::sqrt(k2)), 1e-9);
  EXPECT_NEAR(got.kappa, k4 / (k2 * k2), 1e-9);
}

TEST(SstaMomentAlgebra, StageMomentsMatchTargetWhenClampInactive) {
  // Far from the max(0, .) clamp, the Cornish-Fisher-shaped stage must
  // reproduce its target moments closely (the transform is third-order).
  Moments m{100e-12, 10e-12, 0.6, 0.9};
  const ssta::Stage s = ssta::cell_stage(m, 1.0, true);
  EXPECT_NEAR(s.mean, m.mu, 1e-3 * m.mu);
  EXPECT_NEAR(std::sqrt(s.k2), m.sigma, 0.05 * m.sigma);
  EXPECT_GT(s.k3, 0.0);  // positively skewed target
  // Gaussian stage: exact identity moments.
  const ssta::Stage g = ssta::cell_stage(Moments{100e-12, 10e-12, 0.0, 0.0},
                                         1.0, true);
  EXPECT_NEAR(g.mean, 100e-12, 1e-15);
  EXPECT_NEAR(std::sqrt(g.k2), 10e-12, 1e-15);
  EXPECT_NEAR(g.herm[0], 10e-12, 1e-15);
  EXPECT_NEAR(g.herm[1], 0.0, 1e-16);
}

TEST(SstaMomentAlgebra, StatMaxMonotoneInCorrelationAndExactAtFull) {
  // Identical marginals with a controlled correlation: a is pinned to one
  // local source, b(c) splits the same sigma between the shared source and
  // an independent one, so corr(a, b) = c.
  const double s = 10e-12;
  auto make = [&](double c) {
    ssta::Arrival x;
    x.ensure_locals(2);
    x.mu = 100e-12;
    x.local[0][0] = s * c;
    x.local[1][0] = s * std::sqrt(1.0 - c * c);
    return x;
  };
  const ssta::Arrival a = make(1.0);

  // Independent case: both marginals are exactly Gaussian, so the
  // quadrature max must land on Clark's closed form to quadrature
  // precision.
  const ssta::Arrival ind = ssta::Arrival::stat_max(a, make(0.0));
  const double theta = std::sqrt(2.0) * s;
  EXPECT_NEAR(ind.mu, 100e-12 + theta * normal_pdf(0.0), 1e-5 * 100e-12);

  double prev = ind.mu;
  for (double c : {0.25, 0.5, 0.75, 0.95}) {
    const double mean_c = ssta::Arrival::stat_max(a, make(c)).mu;
    EXPECT_LT(mean_c, prev) << "correlation " << c;
    EXPECT_GE(mean_c, 100e-12) << "correlation " << c;
    prev = mean_c;
  }
  // Fully correlated identical inputs: the max IS the input, exactly.
  const ssta::Arrival full = ssta::Arrival::stat_max(a, make(1.0));
  EXPECT_EQ(full.mu, a.mu);
  EXPECT_EQ(full.variance(), a.variance());
}

TEST(SstaMomentAlgebra, ZeroVarianceStatMaxIsExactMaxFirstWinsTies) {
  ssta::Arrival a, b;
  a.mu = 3.0;
  b.mu = 5.0;
  EXPECT_EQ(ssta::Arrival::stat_max(a, b).mu, 5.0);
  EXPECT_EQ(ssta::Arrival::stat_max(b, a).mu, 5.0);
  b.mu = 3.0;
  a.l3 = 1.0;  // tag a to observe which input wins the tie
  const ssta::Arrival tie = ssta::Arrival::stat_max(a, b);
  EXPECT_EQ(tie.mu, 3.0);
  EXPECT_EQ(tie.l3, 1.0);  // first input wins, like the sampler's fold
}

TEST(SstaMomentAlgebra, ZeroVarianceEngineReducesToMeanEngine) {
  const Fixture f;
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);

  AnalyticSstaOptions aopt;
  aopt.variation_scale = 0.0;
  const auto an = f.run_analytic(nl, spef, aopt);

  // Bit-exact against a single zero-variation MC sample (the sampler and
  // the analytic engine collapse onto the same nominal recurrence)...
  NetMcOptions mopt;
  mopt.variation_scale = 0.0;
  const auto mc = f.run_mc(nl, spef, 1, 1, mopt);
  for (std::size_t n = 0; n < mc.nets.size(); ++n) {
    for (std::size_t e = 0; e < 2; ++e) {
      if (mc.nets[n][e].count == 0) continue;
      ASSERT_EQ(an.nets[n][e].moments.mu, mc.nets[n][e].moments.mu)
          << "net " << n << " edge " << e;
      ASSERT_EQ(an.nets[n][e].moments.sigma, 0.0) << "net " << n;
    }
  }
  // ... and within the calibration-interpolation gap of the mean engine.
  const StaEngine engine(f.model, f.tech);
  const auto nom = engine.run(nl, spef);
  for (std::size_t n = 0; n < nom.nets.size(); ++n) {
    if (!nom.nets[n].reachable) continue;
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_NEAR(an.nets[n][e].moments.mu, nom.nets[n].arrival[e],
                  1e-3 * nom.nets[n].arrival[e] + 1e-15)
          << "net " << n << " edge " << e;
    }
  }
  // Quantiles of a deterministic arrival are the arrival at every level.
  for (std::size_t p = 0; p < an.po_nets.size(); ++p) {
    for (std::size_t l = 0; l < 7; ++l) {
      EXPECT_EQ(an.po_quantiles[p][l], an.po_moments[p].mu);
    }
  }
}

// ------------------------------------------------- golden c17 regression --

TEST(SstaAnalyticGolden, C17MomentsAndQuantilesMatchGoldenCsv) {
  // Same charlib as the netmc golden, so the two CSVs describe the same
  // modeled system (sampled vs analytic).
  const Fixture f(/*full=*/false);
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), f.cells);
  const ParasiticDb spef = generate_parasitics(nl, f.tech);
  const auto res = f.run_analytic(nl, spef);
  ASSERT_FALSE(res.po_nets.empty());

  const std::string golden_path = repo_path("data/ssta_c17_golden.csv");
  if (std::getenv("NSDC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good());
    out << "po_net,mu,sigma,gamma,kappa,qm3,qm2,qm1,q0,qp1,qp2,qp3\n";
    char buf[512];
    for (std::size_t p = 0; p < res.po_nets.size(); ++p) {
      const auto& m = res.po_moments[p];
      const auto& q = res.po_quantiles[p];
      std::snprintf(buf, sizeof(buf),
                    "%s,%.12e,%.12e,%.12e,%.12e,%.12e,%.12e,%.12e,%.12e,"
                    "%.12e,%.12e,%.12e\n",
                    nl.net(res.po_nets[p]).name.c_str(), m.mu, m.sigma,
                    m.gamma, m.kappa, q[0], q[1], q[2], q[3], q[4], q[5],
                    q[6]);
      out << buf;
    }
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << golden_path;
  std::map<std::string, std::vector<double>> golden;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string name, field;
    std::getline(ss, name, ',');
    std::vector<double> vals;
    while (std::getline(ss, field, ',')) vals.push_back(std::stod(field));
    ASSERT_EQ(vals.size(), 11u) << line;
    golden[name] = vals;
  }
  ASSERT_EQ(golden.size(), res.po_nets.size());

  // 12 significant digits in the CSV: 1e-9 relative catches arithmetic
  // reordering, not just genuine model drift.
  const double rtol = 1e-9;
  for (std::size_t p = 0; p < res.po_nets.size(); ++p) {
    const std::string& name = nl.net(res.po_nets[p]).name;
    const auto it = golden.find(name);
    ASSERT_NE(it, golden.end()) << "PO " << name << " missing from golden";
    const auto& g = it->second;
    const auto& m = res.po_moments[p];
    EXPECT_NEAR(m.mu, g[0], rtol * std::fabs(g[0]) + 1e-18) << name;
    EXPECT_NEAR(m.sigma, g[1], rtol * std::fabs(g[1]) + 1e-18) << name;
    EXPECT_NEAR(m.gamma, g[2], rtol * std::fabs(g[2]) + 1e-15) << name;
    EXPECT_NEAR(m.kappa, g[3], rtol * std::fabs(g[3]) + 1e-15) << name;
    for (int lv = 0; lv < 7; ++lv) {
      const auto l = static_cast<std::size_t>(lv);
      EXPECT_NEAR(res.po_quantiles[p][l], g[4 + l],
                  rtol * std::fabs(g[4 + l]) + 1e-18)
          << name << " level " << lv - 3;
    }
  }
}

}  // namespace
}  // namespace nsdc
