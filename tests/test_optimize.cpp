#include "stats/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace nsdc {
namespace {

TEST(NelderMead, Quadratic1D) {
  auto fn = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const auto res = nelder_mead(fn, {0.0});
  EXPECT_NEAR(res.x[0], 3.0, 1e-4);
  EXPECT_LT(res.fx, 1e-8);
}

TEST(NelderMead, Quadratic3D) {
  auto fn = [](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += (1.0 + static_cast<double>(i)) * d * d;
    }
    return s;
  };
  const auto res = nelder_mead(fn, {5.0, 5.0, 5.0});
  EXPECT_NEAR(res.x[0], 0.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
  EXPECT_NEAR(res.x[2], 2.0, 1e-3);
}

TEST(NelderMead, Rosenbrock) {
  auto fn = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iters = 20000;
  const auto res = nelder_mead(fn, {-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], 1.0, 2e-2);
}

TEST(NelderMead, RespectsInfinityConstraint) {
  // Minimum of (x-2)^2 subject to x >= 0 encoded via +inf.
  auto fn = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] + 1.0) * (x[0] + 1.0);  // unconstrained min at -1
  };
  const auto res = nelder_mead(fn, {3.0});
  EXPECT_GE(res.x[0], 0.0);
  EXPECT_NEAR(res.x[0], 0.0, 0.05);
}

TEST(NelderMead, ConvergedFlagOnEasyProblem) {
  auto fn = [](const std::vector<double>& x) { return x[0] * x[0]; };
  const auto res = nelder_mead(fn, {1.0});
  EXPECT_TRUE(res.converged);
}

TEST(NelderMead, ZeroStartingPoint) {
  auto fn = [](const std::vector<double>& x) {
    return (x[0] - 0.5) * (x[0] - 0.5) + (x[1] + 0.25) * (x[1] + 0.25);
  };
  const auto res = nelder_mead(fn, {0.0, 0.0});
  EXPECT_NEAR(res.x[0], 0.5, 1e-3);
  EXPECT_NEAR(res.x[1], -0.25, 1e-3);
}

}  // namespace
}  // namespace nsdc
