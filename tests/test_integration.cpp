// End-to-end integration tests exercising the real transistor-level
// simulator through characterization, model fitting, STA and the golden
// path Monte-Carlo — with small sample counts to stay fast (< ~1 min).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mc_reference.hpp"
#include "liberty/charlib.hpp"
#include "sta/annotate.hpp"
#include "sta/timer.hpp"

namespace nsdc {
namespace {

CharConfig tiny_config() {
  CharConfig cfg;
  cfg.grid_samples = 150;
  cfg.wire_samples = 100;
  cfg.slew_grid = {10e-12, 150e-12, 400e-12};
  cfg.load_grid_rel = {1.0, 8.0, 25.0};
  return cfg;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tech_ = new TechParams(TechParams::nominal28());
    cells_ = new CellLibrary(CellLibrary::standard());
    // Characterize a minimal cell set by hand (build_or_load would do the
    // whole library).
    CellCharacterizer ch(*tech_, tiny_config());
    charlib_ = new CharLib();
    charlib_->set_tech(*tech_);
    charlib_->set_config(tiny_config());
    for (const char* name : {"INVx1", "INVx4"}) {
      for (bool rising : {true, false}) {
        charlib_->add_arc(
            ch.characterize_arc(cells_->by_name(name), 0, rising));
      }
    }
    WireGenerator wires(*tech_);
    const RcTree tree = wires.line(60.0, 6, "Z");
    for (const char* d : {"INVx1", "INVx4"}) {
      for (const char* l : {"INVx1", "INVx4"}) {
        charlib_->add_wire_observation(ch.run_wire_observation(
            cells_->by_name(d), cells_->by_name(l), tree, 0, 100));
      }
    }
  }

  static void TearDownTestSuite() {
    delete charlib_;
    delete cells_;
    delete tech_;
    charlib_ = nullptr;
    cells_ = nullptr;
    tech_ = nullptr;
  }

  static TechParams* tech_;
  static CellLibrary* cells_;
  static CharLib* charlib_;
};

TechParams* IntegrationTest::tech_ = nullptr;
CellLibrary* IntegrationTest::cells_ = nullptr;
CharLib* IntegrationTest::charlib_ = nullptr;

TEST_F(IntegrationTest, NearThresholdDelayIsRightSkewed) {
  // The paper's premise: at 0.6 V the delay distribution is asymmetric
  // with a heavy right tail.
  const auto& ref = charlib_->arc("INVx1", 0, true).ref();
  EXPECT_GT(ref.moments.gamma, 0.3);
  EXPECT_GT(ref.moments.kappa, 0.0);
  // Right tail wider than left: q(+3) - median > median - q(-3).
  const double right = ref.quantiles[6] - ref.quantiles[3];
  const double left = ref.quantiles[3] - ref.quantiles[0];
  EXPECT_GT(right, 1.2 * left);
}

TEST_F(IntegrationTest, MomentsGrowWithLoadAndSlew) {
  const auto& arc = charlib_->arc("INVx1", 0, true);
  // Mean grows monotonically with load at fixed slew (paper Fig. 4).
  for (std::size_t si = 0; si < arc.slews.size(); ++si) {
    for (std::size_t li = 1; li < arc.loads.size(); ++li) {
      EXPECT_GT(arc.at(si, li).moments.mu, arc.at(si, li - 1).moments.mu);
    }
  }
  // Sigma grows with load at the reference slew.
  EXPECT_GT(arc.at(0, 2).moments.sigma, arc.at(0, 0).moments.sigma);
}

TEST_F(IntegrationTest, StrongCellIsFasterAndLessVariable) {
  const auto& x1 = charlib_->arc("INVx1", 0, true).ref();
  const auto& x4 = charlib_->arc("INVx4", 0, true).ref();
  // Same relative load (c_ref scales with strength), so delay is similar
  // but variability falls with strength (Pelgrom averaging).
  EXPECT_LT(x4.moments.variability(), x1.moments.variability());
}

TEST_F(IntegrationTest, WireObservationsPhysical) {
  for (const auto& obs : charlib_->wire_observations()) {
    EXPECT_GT(obs.wire_moments.mu, 0.0);
    EXPECT_GT(obs.variability(), 0.0);
    EXPECT_LT(obs.variability(), 1.0);
    // Elmore is an upper-bound-flavored metric: the MC mean wire delay
    // should be below ~1.2x Elmore and above ~0.2x.
    EXPECT_LT(obs.wire_moments.mu, 1.2 * obs.elmore);
    EXPECT_GT(obs.wire_moments.mu, 0.2 * obs.elmore);
  }
}

TEST_F(IntegrationTest, ElmoreTracksWireDelayMean) {
  // In this substrate the MC mean wire delay stays close to Elmore
  // (paper Eq. 4: T_Elmore = mu_w), and the variability band is set by
  // the BEOL variation plus the driver/load coupling. The strength TRENDS
  // (paper Fig. 8) are exercised with large sample counts in
  // bench_fig8_strength_effect; a unit-test budget would make them flaky.
  for (const auto& obs : charlib_->wire_observations()) {
    EXPECT_NEAR(obs.wire_moments.mu, obs.elmore, 0.15 * obs.elmore)
        << obs.driver_cell << "->" << obs.load_cell;
    EXPECT_GT(obs.variability(), 0.03);
    EXPECT_LT(obs.variability(), 0.5);
  }
}

TEST_F(IntegrationTest, TimerEndToEndOnInverterChain) {
  NSigmaTimer timer(*charlib_, *cells_, *tech_);

  GateNetlist nl("chain5");
  int net = nl.add_primary_input("a");
  for (int i = 0; i < 5; ++i) {
    const int g = nl.add_cell("u" + std::to_string(i),
                              cells_->by_name(i % 2 ? "INVx4" : "INVx1"),
                              {net}, "w" + std::to_string(i));
    net = nl.cell(g).out_net;
  }
  nl.mark_primary_output(net);
  const ParasiticDb spef = generate_parasitics(nl, *tech_);

  const auto analysis = timer.analyze(nl, spef);
  ASSERT_EQ(analysis.critical_path.num_stages(), 5u);
  // Quantiles ordered and positive.
  EXPECT_GT(analysis.quantiles[0], 0.0);
  for (int lv = 1; lv < 7; ++lv) {
    EXPECT_GT(analysis.quantiles[static_cast<std::size_t>(lv)],
              analysis.quantiles[static_cast<std::size_t>(lv - 1)]);
  }

  // Golden MC cross-check at +-1 sigma (tails need more samples than a
  // unit test budget allows).
  PathMcConfig mcc;
  mcc.samples = 120;
  mcc.seed = 99;
  PathMonteCarlo mc(*tech_);
  const auto ref = mc.run(analysis.critical_path, mcc);
  ASSERT_GE(ref.samples.size(), 100u);
  EXPECT_LT(std::fabs(analysis.quantiles[3] - ref.quantiles[3]),
            0.25 * ref.quantiles[3]);
  EXPECT_LT(std::fabs(analysis.quantiles[4] - ref.quantiles[4]),
            0.30 * ref.quantiles[4]);
  EXPECT_LT(std::fabs(analysis.quantiles[2] - ref.quantiles[2]),
            0.30 * ref.quantiles[2]);
  // Model evaluation is orders of magnitude faster than MC.
  EXPECT_LT(analysis.runtime_seconds, ref.runtime_seconds);
}

TEST_F(IntegrationTest, ShapeCalibrationHitsTargets) {
  CellCharacterizer ch(*tech_, tiny_config());
  const CellType& inv = cells_->by_name("INVx1");
  for (double target : {20e-12, 100e-12, 300e-12}) {
    const auto sp = ch.calibrate_shape(inv, 0, true, target);
    EXPECT_NEAR(sp.actual_slew, target, 0.08 * target) << target;
  }
}

}  // namespace
}  // namespace nsdc
