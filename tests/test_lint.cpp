// Lint-engine tests: every built-in rule fires exactly once (with the right
// severity) on a hand-crafted defective design, clean designs produce zero
// errors, reports are bit-identical across thread counts, and the hardened
// parsers emit recoverable diagnostics with line numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "netlist/verilogio.hpp"
#include "sta/annotate.hpp"
#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

std::string repo_path(const std::string& rel) {
  return std::string(NSDC_SOURCE_DIR) + "/" + rel;
}

int count_rule(const LintReport& report, const std::string& rule) {
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

Severity rule_severity(const LintReport& report, const std::string& rule) {
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) return d.severity;
  }
  ADD_FAILURE() << "rule " << rule << " did not fire";
  return Severity::kInfo;
}

/// Synthetic charlib covering EVERY standard-library cell (the shared
/// testfix::make_charlib covers only 7 cells, which would trip
/// lib.uncharacterized-cell on generated designs).
CharLib full_charlib(const CellLibrary& cells) {
  CharLib lib;
  lib.set_tech(TechParams::nominal28());
  for (const CellType& ct : cells.cells()) {
    for (bool rising : {true, false}) {
      testfix::SyntheticArcSpec spec;
      spec.cell = ct.name();
      spec.in_rising = rising;
      spec.mu0 = 40e-12;
      spec.sigma0 = 10e-12 / std::sqrt(static_cast<double>(ct.strength()));
      lib.add_arc(testfix::make_arc(spec));
    }
  }
  return lib;
}

/// make_arc with custom slew/load axes (same synthetic moment surfaces).
ArcCharData make_arc_axes(const testfix::SyntheticArcSpec& spec,
                          std::vector<double> slews,
                          std::vector<double> loads) {
  ArcCharData arc;
  arc.cell = spec.cell;
  arc.pin = 0;
  arc.in_rising = spec.in_rising;
  arc.slews = std::move(slews);
  arc.loads = std::move(loads);
  for (double s : arc.slews) {
    for (double c : arc.loads) {
      ConditionStats cs;
      cs.moments = testfix::synthetic_moments(spec, s, c, arc.slews.front(),
                                              arc.loads.front());
      cs.quantiles = testfix::synthetic_quantiles(cs.moments);
      cs.mean_delay = cs.moments.mu;
      cs.mean_out_slew = 0.8 * s + 20e-12 + 2e3 * c;
      arc.grid.push_back(std::move(cs));
    }
  }
  return arc;
}

/// a -> INVx1(u0) -> n0 -> INVx1(u1) -> y. `mark_po` controls OUTPUT(y).
GateNetlist inv_chain(const CellLibrary& lib, bool mark_po = true) {
  GateNetlist nl("chain");
  const int a = nl.add_primary_input("a");
  const int c0 = nl.add_cell("u0", lib.by_name("INVx1"), {a}, "n0");
  const int c1 =
      nl.add_cell("u1", lib.by_name("INVx1"), {nl.cell(c0).out_net}, "y");
  if (mark_po) nl.mark_primary_output(nl.cell(c1).out_net);
  return nl;
}

// ------------------------------------------------------------ clean designs

TEST(LintClean, C17WithParasiticsAndCharlibHasZeroErrors) {
  const CellLibrary cells = CellLibrary::standard();
  const TechParams tech = TechParams::nominal28();
  const GateNetlist nl = load_bench(repo_path("data/c17.bench"), cells);
  const ParasiticDb spef = generate_parasitics(nl, tech);
  const CharLib charlib = full_charlib(cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  LintInput in;
  in.netlist = &nl;
  in.parasitics = &spef;
  in.charlib = &charlib;
  in.cell_model = &model;
  in.tech = &tech;
  const LintReport report = run_lint(in);
  EXPECT_EQ(report.count(Severity::kError), 0) << report.to_text();
  EXPECT_EQ(report.rules_run(), LintRegistry::global().rules().size());
}

TEST(LintClean, GeneratedDesignHasZeroErrors) {
  const CellLibrary cells = CellLibrary::standard();
  const TechParams tech = TechParams::nominal28();
  RandomNetlistSpec spec;
  spec.name = "lintgen";
  spec.target_cells = 150;
  spec.num_primary_inputs = 10;
  GateNetlist nl = generate_random_mapped(spec, cells);
  finalize_design(nl, cells, tech);
  const ParasiticDb spef = generate_parasitics(nl, tech);
  const CharLib charlib = full_charlib(cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  LintInput in;
  in.netlist = &nl;
  in.parasitics = &spef;
  in.charlib = &charlib;
  in.cell_model = &model;
  in.tech = &tech;
  const LintReport report = run_lint(in);
  EXPECT_EQ(report.count(Severity::kError), 0) << report.to_text();
  // finalize_design buffers every net down to the 8-sink basis.
  EXPECT_EQ(count_rule(report, "net.fanout-basis"), 0);
}

// -------------------------------------------------------- structural rules

TEST(LintStructural, UnconnectedPinFiresOnce) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells);
  nl.rewire_fanin(1, 0, -1);
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "net.unconnected-pin"), 1);
  EXPECT_EQ(rule_severity(report, "net.unconnected-pin"), Severity::kError);
  // n0 now drives nothing: the dangling-output rule flags it too.
  EXPECT_EQ(count_rule(report, "net.dangling-output"), 1);
}

TEST(LintStructural, CombLoopFiresOnce) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells);
  nl.rewire_fanin(0, 0, nl.cell(1).out_net);  // u0 <- y: u0/u1 cycle
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "net.comb-loop"), 1);
  EXPECT_EQ(rule_severity(report, "net.comb-loop"), Severity::kError);
  const Diagnostic* loop = nullptr;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == "net.comb-loop") loop = &d;
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_NE(loop->message.find("u0"), std::string::npos);
  EXPECT_NE(loop->message.find("u1"), std::string::npos);
}

TEST(LintStructural, MultiDriverAndDriverMismatchAndUndriven) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells);
  // Rebind u1's output onto n0: n0 gains a second driver, y (a PO) loses
  // its only driver, and both declared-driver links go stale.
  nl.set_cell_out_net_raw(1, nl.cell(0).out_net);
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "net.multi-driver"), 1);
  EXPECT_EQ(rule_severity(report, "net.multi-driver"), Severity::kError);
  EXPECT_EQ(count_rule(report, "net.undriven"), 1);
  EXPECT_EQ(rule_severity(report, "net.undriven"), Severity::kError);
  EXPECT_EQ(count_rule(report, "net.driver-mismatch"), 2);
}

TEST(LintStructural, DeadNetIsInfoOnly) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
  nl.set_cell_out_net_raw(1, nl.cell(0).out_net);
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  // y now has no driver, no sinks, and no PO marker: dead, info severity.
  EXPECT_EQ(count_rule(report, "net.undriven"), 1);
  EXPECT_EQ(rule_severity(report, "net.undriven"), Severity::kInfo);
}

TEST(LintStructural, DanglingOutputFiresOnce) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "net.dangling-output"), 1);
  EXPECT_EQ(rule_severity(report, "net.dangling-output"), Severity::kWarn);
  EXPECT_EQ(report.count(Severity::kError), 0);
}

TEST(LintStructural, FanoutBasisFiresOnce) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl("fan");
  const int a = nl.add_primary_input("a");
  for (int i = 0; i < 9; ++i) {
    const int c = nl.add_cell("u" + std::to_string(i),
                              cells.by_name("INVx1"), {a},
                              "n" + std::to_string(i));
    nl.mark_primary_output(nl.cell(c).out_net);
  }
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "net.fanout-basis"), 1);
  EXPECT_EQ(rule_severity(report, "net.fanout-basis"), Severity::kWarn);
}

// --------------------------------------------------------- parasitic rules

TEST(LintParasitic, ZeroResistanceAndNoCapacitance) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  ParasiticDb db;
  RcTree tree;  // u1's receiver hangs on a zero-R, zero-C edge
  tree.add_node(0, 0.0, 0.0);
  tree.mark_sink(1, "u1:0");
  db.add("n0", tree);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  const LintReport report = run_lint(in);
  // Two warnings on net n0: the zero-R edge and the cap-free tree.
  EXPECT_EQ(count_rule(report, "spef.nonpositive-rc"), 2);
  EXPECT_EQ(rule_severity(report, "spef.nonpositive-rc"), Severity::kWarn);
}

TEST(LintParasitic, DuplicateSinkPinFiresOnce) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  ParasiticDb db;
  RcTree tree;
  tree.add_node(0, 100.0, 1e-15);
  tree.mark_sink(1, "u1:0");
  tree.mark_sink(1, "u1:0");
  db.add("n0", tree);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "spef.disconnected-node"), 1);
  EXPECT_EQ(rule_severity(report, "spef.disconnected-node"),
            Severity::kError);
}

TEST(LintParasitic, NetMismatchMissingReceiverIsError) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  ParasiticDb db;
  RcTree tree;
  tree.add_node(0, 100.0, 1e-15);
  tree.mark_sink(1, "bogus:0");  // u1:0 missing, bogus:0 stale
  db.add("n0", tree);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  const LintReport report = run_lint(in);
  int errors = 0, warns = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.rule != "spef.net-mismatch") continue;
    (d.severity == Severity::kError ? errors : warns) += 1;
  }
  EXPECT_EQ(errors, 1);  // receiver pin u1:0 absent from the tree
  EXPECT_GE(warns, 1);   // stale sink + un-annotated y net
}

TEST(LintParasitic, UnknownParasiticNetWarns) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  const TechParams tech = TechParams::nominal28();
  ParasiticDb db = generate_parasitics(nl, tech);
  RcTree ghost;
  ghost.add_node(0, 50.0, 1e-15);
  db.add("phantom_net", ghost);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  const LintReport report = run_lint(in);
  int phantom = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.rule == "spef.net-mismatch" &&
        d.object == "net:phantom_net") {
      ++phantom;
      EXPECT_EQ(d.severity, Severity::kWarn);
    }
  }
  EXPECT_EQ(phantom, 1);
}

// ------------------------------------------------------------ domain rules

TEST(LintDomain, UncharacterizedCellFiresOncePerType) {
  const CellLibrary cells = CellLibrary::standard();
  GateNetlist nl("mix");
  const int a = nl.add_primary_input("a");
  const int b = nl.add_primary_input("b");
  nl.add_cell("u0", cells.by_name("INVx1"), {a}, "n0");
  const int c1 = nl.add_cell("u1", cells.by_name("NAND2x1"),
                             {nl.find_net("n0"), b}, "y");
  nl.mark_primary_output(nl.cell(c1).out_net);

  CharLib lib;  // characterizes INVx1 only
  lib.set_tech(TechParams::nominal28());
  for (bool rising : {true, false}) {
    testfix::SyntheticArcSpec spec;
    spec.in_rising = rising;
    lib.add_arc(testfix::make_arc(spec));
  }
  LintInput in;
  in.netlist = &nl;
  in.charlib = &lib;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "lib.uncharacterized-cell"), 1);
  EXPECT_EQ(rule_severity(report, "lib.uncharacterized-cell"),
            Severity::kError);
}

TEST(LintDomain, NonMonotoneQuantilesFireOncePerArc) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  CharLib lib;
  lib.set_tech(TechParams::nominal28());
  for (bool rising : {true, false}) {
    testfix::SyntheticArcSpec spec;
    spec.in_rising = rising;
    ArcCharData arc = testfix::make_arc(spec);
    if (rising) {  // corrupt one grid condition of the rising arc
      std::swap(arc.grid[3].quantiles[2], arc.grid[3].quantiles[4]);
    }
    lib.add_arc(std::move(arc));
  }
  LintInput in;
  in.netlist = &nl;
  in.charlib = &lib;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "lib.nonmonotone-quantiles"), 1);
  EXPECT_EQ(rule_severity(report, "lib.nonmonotone-quantiles"),
            Severity::kWarn);
}

TEST(LintDomain, CalibDivergenceFiresWhenSurfaceCannotFit) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  CharLib lib;
  lib.set_tech(TechParams::nominal28());
  for (bool rising : {true, false}) {
    testfix::SyntheticArcSpec spec;
    spec.in_rising = rising;
    ArcCharData arc = testfix::make_arc(spec);
    if (rising) {  // a wild outlier the Eq. 3 cubic cannot reproduce
      arc.grid[7].moments.gamma += 80.0;
    }
    lib.add_arc(std::move(arc));
  }
  LintInput in;
  in.netlist = &nl;
  in.charlib = &lib;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "lib.calib-divergence"), 1);
  EXPECT_EQ(rule_severity(report, "lib.calib-divergence"), Severity::kWarn);
}

TEST(LintDomain, LoadOutsideGridWarns) {
  const CellLibrary cells = CellLibrary::standard();
  const TechParams tech = TechParams::nominal28();
  const GateNetlist nl = inv_chain(cells);
  ParasiticDb db = generate_parasitics(nl, tech);
  RcTree heavy;  // 50 fF on n0 vs a grid topping out at 12 fF
  heavy.add_node(0, 100.0, 50e-15);
  heavy.mark_sink(1, "u1:0");
  db.add("n0", heavy);
  const CharLib charlib = full_charlib(cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  in.charlib = &charlib;
  in.cell_model = &model;
  in.tech = &tech;
  const LintReport report = run_lint(in);
  EXPECT_EQ(count_rule(report, "sta.load-domain"), 1);
  EXPECT_EQ(rule_severity(report, "sta.load-domain"), Severity::kWarn);
}

TEST(LintDomain, PropagatedSlewOutsideGridWarns) {
  const CellLibrary cells = CellLibrary::standard();
  const TechParams tech = TechParams::nominal28();
  const GateNetlist nl = inv_chain(cells);
  const ParasiticDb db = generate_parasitics(nl, tech);
  // Slew axis ends at 20 ps; the INVx1 output slew (~30 ps) exceeds it, so
  // u1's input is out of the characterized domain while u0 (driven by the
  // 10 ps primary-input edge) stays inside.
  CharLib lib;
  lib.set_tech(TechParams::nominal28());
  for (bool rising : {true, false}) {
    testfix::SyntheticArcSpec spec;
    spec.in_rising = rising;
    lib.add_arc(make_arc_axes(spec, {10e-12, 20e-12},
                              {0.4e-15, 1.6e-15, 4e-15, 7.2e-15, 12e-15}));
  }
  const NSigmaCellModel model = NSigmaCellModel::fit(lib);
  LintInput in;
  in.netlist = &nl;
  in.parasitics = &db;
  in.charlib = &lib;
  in.cell_model = &model;
  in.tech = &tech;
  const LintReport report = run_lint(in);
  ASSERT_EQ(count_rule(report, "sta.slew-domain"), 1) << report.to_text();
  EXPECT_EQ(rule_severity(report, "sta.slew-domain"), Severity::kWarn);
  for (const auto& d : report.diagnostics()) {
    if (d.rule == "sta.slew-domain") EXPECT_EQ(d.object, "cell:u1");
  }
}

// ----------------------------------------------- engine / report mechanics

TEST(LintEngine, ReportsAreByteIdenticalAcrossThreadCounts) {
  const CellLibrary cells = CellLibrary::standard();
  const TechParams tech = TechParams::nominal28();
  GateNetlist nl = inv_chain(cells);
  nl.set_cell_out_net_raw(1, nl.cell(0).out_net);  // seed a defect cluster
  ParasiticDb db;
  RcTree tree;
  tree.add_node(0, 0.0, 0.0);
  tree.mark_sink(1, "u1:0");
  db.add("n0", tree);
  const CharLib charlib = full_charlib(cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  auto run_with = [&](unsigned threads) {
    LintInput in;
    in.netlist = &nl;
    in.parasitics = &db;
    in.charlib = &charlib;
    in.cell_model = &model;
    in.tech = &tech;
    LintOptions opt;
    opt.exec.threads = threads;
    return run_lint(in, opt);
  };
  const LintReport serial = run_with(1);
  const LintReport parallel = run_with(4);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.to_text(), parallel.to_text());
  EXPECT_GT(serial.count(Severity::kError), 0);
}

TEST(LintEngine, DisabledRulesAreSkipped) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
  LintInput in;
  in.netlist = &nl;
  LintOptions opt;
  opt.disabled_rules = {"net.dangling-output"};
  const LintReport report = run_lint(in, opt);
  EXPECT_EQ(count_rule(report, "net.dangling-output"), 0);
  EXPECT_EQ(report.rules_run(),
            LintRegistry::global().rules().size() - 1);
}

TEST(LintEngine, ExitCodeTracksMaxSeverity) {
  const CellLibrary cells = CellLibrary::standard();
  {
    const GateNetlist nl = inv_chain(cells);
    LintInput in;
    in.netlist = &nl;
    EXPECT_EQ(run_lint(in).exit_code(), 0);
  }
  {
    const GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
    LintInput in;
    in.netlist = &nl;
    EXPECT_EQ(run_lint(in).exit_code(), 1);  // dangling-output warn
  }
  {
    GateNetlist nl = inv_chain(cells);
    nl.rewire_fanin(1, 0, -1);
    LintInput in;
    in.netlist = &nl;
    EXPECT_EQ(run_lint(in).exit_code(), 2);  // unconnected-pin error
  }
}

TEST(LintEngine, RegistryRejectsDuplicateIds) {
  LintRegistry reg;
  LintRule rule;
  rule.id = "custom.rule";
  rule.layer = "structural";
  rule.check = [](const LintInput&, const LintPrep&, const LintOptions&,
                  std::vector<Diagnostic>&) {};
  reg.add(rule);
  EXPECT_NE(reg.find("custom.rule"), nullptr);
  EXPECT_THROW(reg.add(rule), std::invalid_argument);
  EXPECT_EQ(reg.find("no.such.rule"), nullptr);
}

TEST(LintEngine, ThrowingRuleBecomesInternalDiagnostic) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells);
  LintRegistry reg;
  LintRule rule;
  rule.id = "custom.throws";
  rule.layer = "structural";
  rule.check = [](const LintInput&, const LintPrep&, const LintOptions&,
                  std::vector<Diagnostic>&) {
    throw std::runtime_error("boom");
  };
  reg.add(rule);
  LintInput in;
  in.netlist = &nl;
  const LintReport report = run_lint(in, {}, reg);
  ASSERT_EQ(count_rule(report, "lint.internal"), 1);
  EXPECT_NE(report.diagnostics()[0].message.find("boom"), std::string::npos);
}

TEST(LintEngine, MergeKeepsCanonicalOrder) {
  const CellLibrary cells = CellLibrary::standard();
  const GateNetlist nl = inv_chain(cells, /*mark_po=*/false);
  LintInput in;
  in.netlist = &nl;
  LintReport report = run_lint(in);  // one warning
  report.merge({{Severity::kError, "parse.bench", "line:3", "bad line", "",
                 3}});
  ASSERT_GE(report.diagnostics().size(), 2u);
  // Errors sort before warnings regardless of merge order.
  EXPECT_EQ(report.diagnostics()[0].rule, "parse.bench");
  EXPECT_EQ(report.exit_code(), 2);
}

// ------------------------------------------------------- hardened parsers

TEST(ParserDiag, BenchRecoversWithLineNumbers) {
  const CellLibrary cells = CellLibrary::standard();
  std::vector<Diagnostic> diags;
  const GateNetlist nl = parse_bench(
      "INPUT(a)\ny = NOT(ghost)\nz = FROB(a)\nOUTPUT(y)\n", cells, "t",
      &diags);
  ASSERT_EQ(diags.size(), 2u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.rule, "parse.bench");
    EXPECT_EQ(d.severity, Severity::kError);
  }
  EXPECT_EQ(diags[0].line, 2);  // undefined signal 'ghost'
  EXPECT_EQ(diags[1].line, 3);  // unknown function FROB
  // The netlist is still structurally valid and analyzable.
  EXPECT_GT(nl.num_cells(), 0u);
  LintInput in;
  in.netlist = &nl;
  EXPECT_NO_THROW(run_lint(in));
}

TEST(ParserDiag, BenchStillThrowsWithoutSink) {
  const CellLibrary cells = CellLibrary::standard();
  EXPECT_THROW(parse_bench("y = NOT(ghost)\nOUTPUT(y)\n", cells, "t"),
               std::runtime_error);
}

TEST(ParserDiag, VerilogUnknownCellHasLineNumber) {
  const CellLibrary cells = CellLibrary::standard();
  std::vector<Diagnostic> diags;
  const GateNetlist nl = parse_verilog(
      "module t(a, y);\ninput a;\noutput y;\n"
      "BOGUS u1 (.A0(a), .Z(y));\nendmodule\n",
      cells, &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "parse.verilog");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("BOGUS"), std::string::npos);
  EXPECT_EQ(nl.num_cells(), 0u);  // instance dropped, output stubbed
}

TEST(ParserDiag, VerilogSkipsMalformedStatement) {
  const CellLibrary cells = CellLibrary::standard();
  std::vector<Diagnostic> diags;
  const GateNetlist nl = parse_verilog(
      "module t(a, y);\ninput a;\noutput y;\n"
      "INVx1 u0 (.A0(a) garbage;\n"
      "INVx1 u1 (.A0(a), .Z(y));\nendmodule\n",
      cells, &diags);
  ASSERT_GE(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_EQ(nl.num_cells(), 1u);  // u1 survives the recovery
}

TEST(ParserDiag, SpefClampsNegativeResistance) {
  std::vector<Diagnostic> diags;
  const ParasiticDb db = ParasiticDb::from_spef(
      "*SPEF nsdc-lite 1\n*D_NET n1 1e-15\n*NODES 2\n1 0 -5 1e-15\n"
      "*SINKS\nu1:0 1\n*END\n",
      &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "parse.spef");
  EXPECT_EQ(diags[0].severity, Severity::kWarn);
  EXPECT_EQ(diags[0].line, 4);
  ASSERT_TRUE(db.contains("n1"));
  EXPECT_EQ(db.net("n1").edge_res(1), 0.0);  // clamped
}

TEST(ParserDiag, SpefRecoversFromMissingEnd) {
  std::vector<Diagnostic> diags;
  const ParasiticDb db = ParasiticDb::from_spef(
      "*SPEF nsdc-lite 1\n*D_NET n1 0\n*NODES 2\n1 0 10 1e-15\n", &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_TRUE(db.contains("n1"));  // net kept despite the missing *END
}

}  // namespace
}  // namespace nsdc
