// Determinism/regression layer for the parallel execution engine: pool
// edge cases, and the contract that every parallel flow (mean STA,
// statistical STA, path Monte-Carlo) is bit-identical at any thread count.
#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "baselines/mc_reference.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/engine.hpp"
#include "sta/statprop.hpp"
#include "synthetic_charlib.hpp"
#include "util/cancel.hpp"
#include "util/errors.hpp"
#include "util/exec.hpp"

namespace nsdc {
namespace {

using testfix::make_charlib;

// ---------------------------------------------------------------- pool ---

TEST(ThreadPool, SizeMatchesRequestedWorkers) {
  ThreadPool p3(3);
  EXPECT_EQ(p3.size(), 3u);
  ThreadPool p0(0);
  EXPECT_EQ(p0.size(), 0u);
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  const unsigned blocks = pool.run_blocks(
      hits.size(), 10, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      });
  EXPECT_EQ(blocks, 10u);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, RunBlocksVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  const unsigned blocks = pool.run_blocks(n, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(blocks, (n + 63) / 64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  const unsigned blocks = pool.run_blocks(
      0, 1, [](std::size_t, std::size_t) { FAIL() << "must not be called"; });
  EXPECT_EQ(blocks, 0u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  auto boom = [](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      if (i == 37) throw std::runtime_error("index 37 failed");
    }
  };
  EXPECT_THROW(pool.run_blocks(100, 8, boom), std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.run_blocks(50, 5,
                  [&](std::size_t b, std::size_t e) {
                    count.fetch_add(static_cast<int>(e - b));
                  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExactlyFirstExceptionIsRethrown) {
  // Zero-worker pool runs blocks on the caller in index order, so "first"
  // is deterministic: index 10 throws before index 20 is ever visited.
  ThreadPool pool(0);
  try {
    pool.run_blocks(64, 1, [](std::size_t b, std::size_t) {
      if (b == 10) throw std::runtime_error("first");
      if (b == 20) throw std::invalid_argument("second");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPool, ReusableAfterCancelledJob) {
  ThreadPool pool(2);
  ExecContext exec;
  exec.pool = &pool;
  CancellationToken token;
  token.request_cancel();
  exec.cancel = &token;
  // A pre-cancelled token turns every index into a CancelledError; the
  // first rethrow surfaces it and fail-fast skips the rest.
  EXPECT_THROW(exec.parallel_for(64, [](std::size_t) {}), CancelledError);

  // The pool (and the same ExecContext minus the token) must complete a
  // fresh job afterwards — cancellation is a normal failed job.
  exec.cancel = nullptr;
  std::atomic<int> count{0};
  exec.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, CancellationSkipsUnclaimedWork) {
  // Serial pool: indices run in order, so everything after the cancel
  // point must never execute.
  ThreadPool pool(0);
  ExecContext exec;
  exec.pool = &pool;
  CancellationToken token;
  exec.cancel = &token;
  std::atomic<int> ran{0};
  EXPECT_THROW(exec.parallel_for(100,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 4) token.request_cancel();
                                 }),
               CancelledError);
  // Indices 0..4 ran; index 5's pre-check threw; nothing later ran.
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(token.reason(), CancelReason::kRequested);
}

// -------------------------------------------------- parallel_for facade ---

TEST(ParallelFor, SurfacesChosenWorkerCount) {
  auto noop = [](std::size_t) {};
  // More lanes than indices: clamped to one index per block.
  EXPECT_EQ(parallel_for(10, noop, 32), 10u);
  // Uneven split: ceil(10/3)=4 per block -> only 3 blocks materialize.
  EXPECT_EQ(parallel_for(10, noop, 3), 3u);
  EXPECT_EQ(parallel_for(5, noop, 4), 3u);  // chunk 2 -> blocks 0-2,2-4,4-5
  EXPECT_EQ(parallel_for(100, noop, 1), 1u);
  EXPECT_EQ(parallel_for(0, noop, 4), 0u);
}

TEST(ParallelFor, DefaultThreadsOverride) {
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  EXPECT_EQ(parallel_for(300, [](std::size_t) {}, 0), 3u);
  set_default_threads(0);  // restore env/hardware default
  EXPECT_GE(default_threads(), 1u);
}

TEST(ParallelFor, NestedCallsComplete) {
  std::vector<std::atomic<int>> hits(200);
  parallel_for(
      4,
      [&](std::size_t outer) {
        parallel_for(
            50, [&](std::size_t inner) { hits[outer * 50 + inner].fetch_add(1); },
            3);
      },
      4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionReachesCaller) {
  EXPECT_THROW(parallel_for(
                   64, [](std::size_t i) {
                     if (i == 13) throw std::invalid_argument("13");
                   },
                   4),
               std::invalid_argument);
}

TEST(ParallelForChunked, GrainBoundsBlockSize) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<int> calls{0};
  const unsigned blocks = parallel_for_chunked(
      n, 100,
      [&](std::size_t b, std::size_t e) {
        EXPECT_LT(b, e);
        calls.fetch_add(1);
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      8);
  EXPECT_LE(blocks, 10u);  // never smaller than the grain
  EXPECT_EQ(blocks, static_cast<unsigned>(calls.load()));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------- thread-count invariance ------

class InvarianceTest : public ::testing::Test {
 protected:
  InvarianceTest()
      : charlib(make_charlib()),
        cells(CellLibrary::standard()),
        model(NSigmaCellModel::fit(charlib)),
        tech(TechParams::nominal28()),
        // NAND2x1/INVx1 only, so the synthetic charlib covers every arc.
        netlist(generate_array_multiplier(6, cells)),
        parasitics(generate_parasitics(netlist, tech)) {}

  StaEngine::Result run_sta(unsigned threads) const {
    StaConfig cfg;
    cfg.exec.threads = threads;
    cfg.min_parallel_cells = 1;  // force the levelized parallel path
    const StaEngine engine(model, tech, cfg);
    return engine.run(netlist, parasitics);
  }

  CharLib charlib;
  CellLibrary cells;
  NSigmaCellModel model;
  TechParams tech;
  GateNetlist netlist;
  ParasiticDb parasitics;
};

TEST_F(InvarianceTest, StaEngineBitIdenticalAcrossThreadCounts) {
  ASSERT_GE(netlist.num_cells(), 200u);
  const auto ref = run_sta(1);
  for (unsigned t : {2u, 7u, default_threads()}) {
    const auto got = run_sta(t);
    ASSERT_EQ(got.nets.size(), ref.nets.size()) << t << " threads";
    EXPECT_EQ(got.max_arrival, ref.max_arrival) << t << " threads";
    EXPECT_EQ(got.critical_net, ref.critical_net);
    EXPECT_EQ(got.critical_edge, ref.critical_edge);
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(std::memcmp(&got.nets[n].arrival, &ref.nets[n].arrival,
                            sizeof(ref.nets[n].arrival)),
                0)
          << "net " << n << " at " << t << " threads";
      EXPECT_EQ(std::memcmp(&got.nets[n].slew, &ref.nets[n].slew,
                            sizeof(ref.nets[n].slew)),
                0)
          << "net " << n << " at " << t << " threads";
      EXPECT_EQ(got.net_load[n], ref.net_load[n]);
    }
  }
}

TEST_F(InvarianceTest, StatisticalStaBitIdenticalAcrossThreadCounts) {
  const NSigmaWireModel wire_model = NSigmaWireModel::fit(charlib, cells);
  auto run_at = [&](unsigned threads) {
    StatisticalSta::Config cfg;
    cfg.sta.exec.threads = threads;
    cfg.sta.min_parallel_cells = 1;
    const StatisticalSta sta(model, wire_model, tech, cfg);
    return sta.run(netlist, parasitics);
  };
  const auto ref = run_at(1);
  for (unsigned t : {2u, 7u}) {
    const auto got = run_at(t);
    ASSERT_EQ(got.nets.size(), ref.nets.size());
    EXPECT_EQ(got.worst.mean, ref.worst.mean) << t << " threads";
    EXPECT_EQ(got.worst.var, ref.worst.var) << t << " threads";
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (int e = 0; e < 2; ++e) {
        const auto ei = static_cast<std::size_t>(e);
        EXPECT_EQ(got.nets[n][ei].mean, ref.nets[n][ei].mean) << n;
        EXPECT_EQ(got.nets[n][ei].var, ref.nets[n][ei].var) << n;
      }
    }
  }
}

TEST_F(InvarianceTest, PathMonteCarloBitIdenticalAcrossThreadCounts) {
  // A short real path keeps the transient-simulation budget test-sized.
  GateNetlist chain("mc_chain");
  int net = chain.add_primary_input("a");
  for (int i = 0; i < 3; ++i) {
    const int g = chain.add_cell("u" + std::to_string(i),
                                 cells.by_name(i % 2 ? "INVx2" : "INVx1"),
                                 {net}, "w" + std::to_string(i));
    net = chain.cell(g).out_net;
  }
  chain.mark_primary_output(net);
  const ParasiticDb spef = generate_parasitics(chain, tech);
  const StaEngine engine(model, tech);
  const auto sta = engine.run(chain, spef);
  const PathDescription path = engine.extract_critical_path(chain, sta);

  PathMonteCarlo mc(tech);
  auto run_at = [&](unsigned threads) {
    PathMcConfig cfg;
    cfg.samples = 40;
    cfg.seed = 4242;
    cfg.threads = threads;
    return mc.run(path, cfg);
  };
  const auto ref = run_at(1);
  ASSERT_GE(ref.samples.size(), 32u);
  for (unsigned t : {2u, 7u}) {
    const auto got = run_at(t);
    EXPECT_EQ(got.failures, ref.failures) << t << " threads";
    ASSERT_EQ(got.samples.size(), ref.samples.size()) << t << " threads";
    for (std::size_t i = 0; i < ref.samples.size(); ++i) {
      EXPECT_EQ(got.samples[i], ref.samples[i]) << "sample " << i;
    }
    for (int lv = 0; lv < 7; ++lv) {
      const auto l = static_cast<std::size_t>(lv);
      EXPECT_EQ(got.quantiles[l], ref.quantiles[l]) << "level " << lv;
    }
  }
}

TEST_F(InvarianceTest, SerialFallbackMatchesParallelPath) {
  // Below the threshold the engine runs serially; results must match the
  // forced-parallel run exactly.
  StaConfig serial_cfg;
  serial_cfg.min_parallel_cells = netlist.num_cells() + 1;
  serial_cfg.exec.threads = 8;
  const StaEngine serial_engine(model, tech, serial_cfg);
  const auto serial = serial_engine.run(netlist, parasitics);
  const auto parallel = run_sta(8);
  EXPECT_EQ(serial.max_arrival, parallel.max_arrival);
  for (std::size_t n = 0; n < serial.nets.size(); ++n) {
    EXPECT_EQ(serial.nets[n].arrival[0], parallel.nets[n].arrival[0]);
    EXPECT_EQ(serial.nets[n].arrival[1], parallel.nets[n].arrival[1]);
  }
}

}  // namespace
}  // namespace nsdc
