#include "spice/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nsdc {
namespace {

TEST(Pwl, ConstantEverywhere) {
  const Pwl p = Pwl::constant(0.6);
  EXPECT_DOUBLE_EQ(p.at(-1.0), 0.6);
  EXPECT_DOUBLE_EQ(p.at(0.0), 0.6);
  EXPECT_DOUBLE_EQ(p.at(1e9), 0.6);
}

TEST(Pwl, LinearInterpolation) {
  const Pwl p({{0.0, 0.0}, {1.0, 2.0}});
  EXPECT_DOUBLE_EQ(p.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.at(0.25), 0.5);
  EXPECT_DOUBLE_EQ(p.at(2.0), 2.0);   // held flat after
  EXPECT_DOUBLE_EQ(p.at(-1.0), 0.0);  // held flat before
}

TEST(Pwl, RejectsNonAscendingTimes) {
  EXPECT_THROW(Pwl({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
}

TEST(Pwl, Ramp1090Definition) {
  // ramp(t0=0, 0 -> 1, slew) must have its 10%-90% width equal to slew.
  const double slew = 80e-12;
  const Pwl p = Pwl::ramp(0.0, 0.0, 1.0, slew);
  // Find 10% and 90% crossing analytically: ramp duration = slew / 0.8.
  const double dur = slew / 0.8;
  EXPECT_NEAR(p.at(0.1 * dur), 0.1, 1e-12);
  EXPECT_NEAR(p.at(0.9 * dur), 0.9, 1e-12);
}

TEST(Trace, Interpolation) {
  Trace t;
  t.t = {0.0, 1.0, 2.0};
  t.v = {0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(t.at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.at(1.5), 5.0);
  EXPECT_DOUBLE_EQ(t.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(3.0), 0.0);
}

Trace make_rising(double t_start, double duration, double vdd) {
  Trace t;
  for (int i = 0; i <= 100; ++i) {
    const double f = i / 100.0;
    t.t.push_back(t_start + f * duration);
    t.v.push_back(f * vdd);
  }
  return t;
}

TEST(CrossTime, RisingCrossing) {
  const Trace t = make_rising(10.0, 100.0, 1.0);
  const auto c = cross_time(t, 0.5, true);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, 60.0, 1e-9);
}

TEST(CrossTime, DirectionMatters) {
  const Trace t = make_rising(0.0, 10.0, 1.0);
  EXPECT_TRUE(cross_time(t, 0.5, true).has_value());
  EXPECT_FALSE(cross_time(t, 0.5, false).has_value());
}

TEST(CrossTime, AfterParameter) {
  Trace t;
  t.t = {0.0, 1.0, 2.0, 3.0, 4.0};
  t.v = {0.0, 1.0, 0.0, 1.0, 0.0};  // two rising crossings of 0.5
  const auto first = cross_time(t, 0.5, true, 0.0);
  const auto second = cross_time(t, 0.5, true, 1.0);
  ASSERT_TRUE(first && second);
  EXPECT_NEAR(*first, 0.5, 1e-12);
  EXPECT_NEAR(*second, 2.5, 1e-12);
}

TEST(MeasureSlew, RisingRamp) {
  const Trace t = make_rising(0.0, 100.0, 0.6);
  const auto s = measure_slew(t, 0.6, true);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 80.0, 1e-6);  // 10% -> 90% of a linear 100-long ramp
}

TEST(MeasureSlew, FallingRamp) {
  Trace t;
  for (int i = 0; i <= 100; ++i) {
    t.t.push_back(i);
    t.v.push_back(0.6 * (1.0 - i / 100.0));
  }
  const auto s = measure_slew(t, 0.6, false);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 80.0, 1e-6);
}

TEST(MeasureSlew, MissingTransition) {
  Trace t;
  t.t = {0.0, 1.0};
  t.v = {0.0, 0.0};
  EXPECT_FALSE(measure_slew(t, 0.6, true).has_value());
}

TEST(MeasureDelay, FiftyPercentCrossings) {
  const Trace in = make_rising(0.0, 10.0, 1.0);    // crosses 0.5 at t=5
  Trace out;
  for (int i = 0; i <= 100; ++i) {
    out.t.push_back(i * 0.2);
    out.v.push_back(1.0 - i * 0.01);  // falls, crosses 0.5 at t=10
  }
  const auto d = measure_delay(in, true, out, false, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 5.0, 1e-9);
}

TEST(MeasureDelay, NegativeDelayAllowed) {
  // Output crosses before the input does (slow input, strong gate).
  const Trace in = make_rising(0.0, 100.0, 1.0);  // crosses 0.5 at 50
  Trace out;
  for (int i = 0; i <= 100; ++i) {
    out.t.push_back(i);
    out.v.push_back(1.0 - i / 25.0);  // crosses 0.5 at 12.5
  }
  const auto d = measure_delay(in, true, out, false, 1.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 12.5 - 50.0, 1e-9);
}

}  // namespace
}  // namespace nsdc
