#pragma once
// Test fixture: an analytically-constructed CharLib whose moment surfaces
// and quantiles follow closed forms matching the model's functional family
// exactly. Model-fitting code (Table I regression, calibration surfaces,
// wire coefficients) must recover these synthetic truths to tight
// tolerances — no circuit simulation involved, so the tests are fast and
// deterministic.

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "liberty/charlib.hpp"
#include "pdk/cells.hpp"

namespace nsdc::testfix {

/// Ground-truth Table-I coefficients used by the synthetic quantiles
/// (columns: sigma*gamma, sigma*kappa, sigma*gamma*kappa), respecting the
/// per-level active-term mask.
inline const std::array<std::array<double, 3>, 7>& true_table1() {
  static const std::array<std::array<double, 3>, 7> k = {{
      {0.0, -0.35, 0.06},    // -3
      {-0.25, -0.12, 0.04},  // -2
      {-0.30, 0.0, 0.02},    // -1
      {-0.16, 0.0, 0.01},    //  0
      {0.22, 0.0, -0.02},    // +1
      {0.45, 0.18, -0.03},   // +2
      {0.0, 0.55, -0.05},    // +3
  }};
  return k;
}

/// Synthetic quantiles from moments via the ground-truth coefficients.
inline std::array<double, 7> synthetic_quantiles(const Moments& m) {
  std::array<double, 7> q{};
  const auto& k = true_table1();
  for (int lv = 0; lv < 7; ++lv) {
    const int n = lv - 3;
    const auto l = static_cast<std::size_t>(lv);
    q[l] = m.mu + n * m.sigma + k[l][0] * m.sigma * m.gamma +
           k[l][1] * m.sigma * m.kappa +
           k[l][2] * m.sigma * m.gamma * m.kappa;
  }
  return q;
}

struct SyntheticArcSpec {
  std::string cell = "INVx1";
  bool in_rising = true;
  double mu0 = 40e-12;
  double sigma0 = 10e-12;
  double gamma0 = 0.9;
  double kappa0 = 1.4;
};

/// Moments as smooth functions of the operating condition, built exactly
/// from the calibration functional family (bilinear mu/sigma, cubic
/// gamma/kappa, both with a cross term) in the model's scaled coordinates
/// (s_scale = 100 ps, c_scale = 1 fF).
inline Moments synthetic_moments(const SyntheticArcSpec& spec, double slew,
                                 double load, double s_ref, double c_ref) {
  const double ds = (slew - s_ref) / 100e-12;
  const double dc = (load - c_ref) / 1e-15;
  Moments m;
  m.mu = spec.mu0 + 8e-12 * ds + 3e-12 * dc + 0.5e-12 * ds * dc;
  m.sigma = spec.sigma0 + 2e-12 * ds + 0.8e-12 * dc + 0.1e-12 * ds * dc;
  m.gamma = spec.gamma0 + 0.05 * ds - 0.02 * dc + 0.01 * ds * ds -
            0.004 * dc * dc + 0.002 * ds * ds * ds + 0.0008 * dc * dc * dc +
            0.003 * ds * dc;
  m.kappa = spec.kappa0 - 0.06 * ds + 0.03 * dc - 0.008 * ds * ds +
            0.003 * dc * dc + 0.001 * ds * ds * ds - 0.0006 * dc * dc * dc -
            0.002 * ds * dc;
  return m;
}

inline ArcCharData make_arc(const SyntheticArcSpec& spec) {
  ArcCharData arc;
  arc.cell = spec.cell;
  arc.pin = 0;
  arc.in_rising = spec.in_rising;
  arc.slews = {10e-12, 60e-12, 150e-12, 300e-12, 500e-12};
  arc.loads = {0.4e-15, 1.6e-15, 4e-15, 7.2e-15, 12e-15};
  for (double s : arc.slews) {
    for (double c : arc.loads) {
      ConditionStats cs;
      cs.moments = synthetic_moments(spec, s, c, arc.slews.front(),
                                     arc.loads.front());
      cs.quantiles = synthetic_quantiles(cs.moments);
      cs.mean_delay = cs.moments.mu;
      cs.mean_out_slew = 0.8 * s + 20e-12 + 2e3 * c;  // smooth slew table
      arc.grid.push_back(std::move(cs));
    }
  }
  return arc;
}

/// Ground-truth wire coefficients (per function family, matching the
/// model's identifiable parameterization) plus the intrinsic intercept.
inline double true_x_intrinsic() { return 0.045; }
inline double true_x_drive(const std::string& cell) {
  if (cell.find("INV") != std::string::npos) return 0.9;
  return cell.find("NAND") != std::string::npos ? 0.7 : 0.6;
}
inline double true_x_load(const std::string& cell) {
  if (cell.find("INV") != std::string::npos) return 0.35;
  return cell.find("NAND") != std::string::npos ? 0.45 : 0.5;
}

/// A full synthetic library over a handful of cells, with wire
/// observations generated from Eq. 7 using the arcs' variabilities.
inline CharLib make_charlib() {
  CharLib lib;
  lib.set_tech(TechParams::nominal28());

  // Per-cell base moments: variability shrinks with strength (Pelgrom).
  const std::vector<std::string> cells = {"INVx1", "INVx2", "INVx4", "INVx8",
                                          "NAND2x1", "NAND2x2", "NOR2x2"};
  for (const auto& name : cells) {
    const auto xpos = name.rfind('x');
    const double strength = std::stod(name.substr(xpos + 1));
    for (bool rising : {true, false}) {
      SyntheticArcSpec spec;
      spec.cell = name;
      spec.in_rising = rising;
      spec.mu0 = (name.find("INV") == 0 ? 35e-12 : 55e-12) * (rising ? 1.0 : 1.1);
      spec.sigma0 = spec.mu0 * 0.30 / std::sqrt(strength);
      spec.gamma0 = 0.8 + 0.1 * (rising ? 1.0 : -1.0);
      spec.kappa0 = 1.2;
      lib.add_arc(make_arc(spec));
    }
  }

  // Wire observations: X_w = XFI(d) * V(d) + XFO(l) * V(l) exactly.
  const std::vector<std::string> drivers = {"INVx1", "INVx2", "INVx4",
                                            "INVx8", "NAND2x2", "NOR2x2"};
  const std::vector<std::string> loads = {"INVx1", "INVx2", "INVx4",
                                          "NAND2x2"};
  int tree_id = 0;
  for (const auto& d : drivers) {
    for (const auto& l : loads) {
      WireObservation obs;
      obs.driver_cell = d;
      obs.load_cell = l;
      obs.tree_id = tree_id++ % 2;
      obs.elmore = 15e-12;
      const double xw = true_x_intrinsic() +
                        true_x_drive(d) * lib.cell_variability(d) +
                        true_x_load(l) * lib.cell_variability(l);
      obs.wire_moments.mu = obs.elmore;
      obs.wire_moments.sigma = xw * obs.elmore;
      for (int lv = 0; lv < 7; ++lv) {
        obs.quantiles[static_cast<std::size_t>(lv)] =
            (1.0 + (lv - 3) * xw) * obs.elmore;
      }
      lib.add_wire_observation(std::move(obs));
    }
  }
  return lib;
}

/// Synthetic arcs for EVERY cell of CellLibrary::standard() (6 functions x
/// strengths 1/2/4/8), so STA can run over generate_iscas_like /
/// generate_random_mapped netlists, which draw from the whole library.
/// Quantiles still follow true_table1(), so model fits stay exact.
inline CharLib make_full_charlib() {
  CharLib lib;
  lib.set_tech(TechParams::nominal28());
  const std::vector<std::pair<std::string, double>> funcs = {
      {"INV", 35e-12},   {"BUF", 45e-12},   {"NAND2", 55e-12},
      {"NOR2", 60e-12},  {"AOI21", 70e-12}, {"OAI21", 72e-12},
  };
  for (const auto& [func, mu_base] : funcs) {
    for (const int strength : {1, 2, 4, 8}) {
      for (bool rising : {true, false}) {
        SyntheticArcSpec spec;
        spec.cell = func + "x" + std::to_string(strength);
        spec.in_rising = rising;
        // Stronger drive -> lower intrinsic delay, so timing-driven
        // upsizing has a real gradient to follow.
        spec.mu0 = mu_base * (0.5 + 1.0 / strength) * (rising ? 1.0 : 1.1);
        spec.sigma0 = spec.mu0 * 0.30 / std::sqrt(static_cast<double>(strength));
        spec.gamma0 = 0.8 + 0.1 * (rising ? 1.0 : -1.0);
        spec.kappa0 = 1.2;
        lib.add_arc(make_arc(spec));
      }
    }
  }
  return lib;
}

}  // namespace nsdc::testfix
