#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "util/table.hpp"
#include "util/threading.hpp"
#include "util/units.hpp"

namespace nsdc {
namespace {

TEST(Units, PsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ps(from_ps(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_ps(1e-12), 1.0);
  EXPECT_DOUBLE_EQ(to_ns(1e-9), 1.0);
}

TEST(Units, FfRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ff(from_ff(0.4)), 0.4);
  EXPECT_DOUBLE_EQ(from_ff(1.0), 1e-15);
}

TEST(Units, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_fixed(0.5, 3), "0.500");
}

TEST(Units, FormatTimePicosecondRange) {
  EXPECT_EQ(format_time(42e-12), "42.000 ps");
  EXPECT_EQ(format_time(1.5e-9), "1.500 ns");
  EXPECT_EQ(format_time(2.25e-3), "2.250 ms");
}

TEST(Table, PrintAligned) {
  Table t({"a", "bb"});
  t.add_row({"xxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("xxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericRow) {
  Table t({"name", "v1", "v2"});
  t.add_row_numeric("row", {1.234, 5.678}, 2);
  EXPECT_EQ(t.cell(0, 1), "1.23");
  EXPECT_EQ(t.cell(0, 2), "5.68");
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"a,b \"quoted\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n\"a,b \"\"quoted\"\"\"\n");
}

TEST(Table, CellOutOfRangeThrows) {
  Table t({"x"});
  t.add_row({"v"});
  EXPECT_THROW(t.cell(1, 0), std::out_of_range);
  EXPECT_THROW(t.cell(0, 1), std::out_of_range);
}

TEST(Threading, VisitsEveryIndexOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Threading, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Threading, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace nsdc
