#include "stats/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace nsdc {
namespace {

TEST(Moments, KnownSmallDataset) {
  // {1,2,3,4,5}: mean 3, sample sd sqrt(2.5), symmetric.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const Moments m = compute_moments(xs);
  EXPECT_DOUBLE_EQ(m.mu, 3.0);
  EXPECT_NEAR(m.sigma, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(m.gamma, 0.0, 1e-12);
}

TEST(Moments, ConstantData) {
  const std::vector<double> xs{7, 7, 7, 7};
  const Moments m = compute_moments(xs);
  EXPECT_DOUBLE_EQ(m.mu, 7.0);
  EXPECT_DOUBLE_EQ(m.sigma, 0.0);
  EXPECT_DOUBLE_EQ(m.gamma, 0.0);
  EXPECT_DOUBLE_EQ(m.kappa, 0.0);
}

TEST(Moments, GaussianSampleHasZeroExcessKurtosis) {
  Rng rng(3);
  MomentAccumulator acc;
  for (int i = 0; i < 400000; ++i) acc.add(rng.normal(5.0, 2.0));
  const Moments m = acc.moments();
  EXPECT_NEAR(m.mu, 5.0, 0.02);
  EXPECT_NEAR(m.sigma, 2.0, 0.02);
  EXPECT_NEAR(m.gamma, 0.0, 0.02);
  // kappa is EXCESS kurtosis: Gaussian => 0, not 3.
  EXPECT_NEAR(m.kappa, 0.0, 0.05);
}

TEST(Moments, ExponentialSkewAndKurtosis) {
  // Exponential distribution: skewness 2, excess kurtosis 6.
  Rng rng(5);
  MomentAccumulator acc;
  for (int i = 0; i < 1000000; ++i) {
    acc.add(-std::log(1.0 - rng.uniform()));
  }
  const Moments m = acc.moments();
  EXPECT_NEAR(m.mu, 1.0, 0.01);
  EXPECT_NEAR(m.sigma, 1.0, 0.01);
  EXPECT_NEAR(m.gamma, 2.0, 0.1);
  EXPECT_NEAR(m.kappa, 6.0, 0.5);
}

TEST(Moments, MergeEqualsBatch) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(1.0, 3.0) + 0.2 * i);
  MomentAccumulator whole;
  for (double x : xs) whole.add(x);
  MomentAccumulator a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 1700 ? a : b).add(xs[i]);
  }
  a.merge(b);
  const Moments mw = whole.moments();
  const Moments mm = a.moments();
  EXPECT_EQ(whole.count(), a.count());
  EXPECT_NEAR(mm.mu, mw.mu, 1e-9 * std::fabs(mw.mu));
  EXPECT_NEAR(mm.sigma, mw.sigma, 1e-9 * mw.sigma);
  EXPECT_NEAR(mm.gamma, mw.gamma, 1e-8);
  EXPECT_NEAR(mm.kappa, mw.kappa, 1e-8);
}

TEST(Moments, MergeWithEmpty) {
  MomentAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const Moments before = a.moments();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.moments().mu, before.mu);

  MomentAccumulator e2;
  e2.merge(a);
  EXPECT_DOUBLE_EQ(e2.moments().mu, before.mu);
  EXPECT_EQ(e2.count(), 2u);
}

TEST(Moments, NonFiniteSamplesRejectedAndCounted) {
  MomentAccumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  const Moments before = acc.moments();

  acc.add(std::numeric_limits<double>::quiet_NaN());
  acc.add(std::numeric_limits<double>::infinity());
  acc.add(-std::numeric_limits<double>::infinity());

  // Rejections are counted but leave count and moments bit-identical.
  EXPECT_EQ(acc.rejected(), 3u);
  EXPECT_EQ(acc.count(), 3u);
  const Moments after = acc.moments();
  EXPECT_EQ(after.mu, before.mu);
  EXPECT_EQ(after.sigma, before.sigma);
  EXPECT_EQ(after.gamma, before.gamma);
  EXPECT_EQ(after.kappa, before.kappa);
}

TEST(Moments, MergeSumsRejectedCounts) {
  MomentAccumulator a, b;
  a.add(1.0);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(2.0);
  b.add(std::numeric_limits<double>::infinity());
  b.add(std::numeric_limits<double>::quiet_NaN());
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.rejected(), 3u);

  // The empty-destination fast path must preserve the summed rejections.
  MomentAccumulator empty;
  empty.add(std::numeric_limits<double>::quiet_NaN());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.rejected(), 4u);
}

TEST(Moments, StateRoundTripIsBitExact) {
  MomentAccumulator acc;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) acc.add(rng.normal(3.0, 2.0));
  acc.add(std::numeric_limits<double>::quiet_NaN());

  const MomentAccumulator::State state = acc.state();
  const MomentAccumulator restored = MomentAccumulator::from_state(state);
  EXPECT_EQ(restored.count(), acc.count());
  EXPECT_EQ(restored.rejected(), acc.rejected());
  const Moments a = acc.moments(), b = restored.moments();
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.kappa, b.kappa);

  // Resume-grade contract: an accumulator restored mid-stream and fed the
  // tail must end bit-identical to one that saw the whole stream.
  MomentAccumulator whole, half;
  Rng r2(9);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(r2.normal(0.0, 1.0));
  for (double x : xs) whole.add(x);
  for (int i = 0; i < 100; ++i) half.add(xs[static_cast<std::size_t>(i)]);
  MomentAccumulator resumed = MomentAccumulator::from_state(half.state());
  for (int i = 100; i < 200; ++i) {
    resumed.add(xs[static_cast<std::size_t>(i)]);
  }
  const MomentAccumulator::State ws = whole.state(), rs = resumed.state();
  EXPECT_EQ(ws.n, rs.n);
  EXPECT_EQ(ws.mean, rs.mean);
  EXPECT_EQ(ws.m2, rs.m2);
  EXPECT_EQ(ws.m3, rs.m3);
  EXPECT_EQ(ws.m4, rs.m4);
}

TEST(Moments, NumericalStabilityLargeOffset) {
  // One-pass accumulators must survive a large common offset.
  MomentAccumulator acc;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) acc.add(1e9 + rng.normal(0.0, 1.0));
  const Moments m = acc.moments();
  EXPECT_NEAR(m.sigma, 1.0, 0.05);
  EXPECT_NEAR(m.gamma, 0.0, 0.2);
}

TEST(Moments, VariabilityRatio) {
  Moments m;
  m.mu = 10.0;
  m.sigma = 2.5;
  EXPECT_DOUBLE_EQ(m.variability(), 0.25);
  m.mu = 0.0;
  EXPECT_DOUBLE_EQ(m.variability(), 0.0);
}

TEST(Moments, VarianceUnbiased) {
  MomentAccumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 2.0);  // n-1 denominator
}

TEST(Moments, SingleSample) {
  MomentAccumulator acc;
  acc.add(4.2);
  const Moments m = acc.moments();
  EXPECT_DOUBLE_EQ(m.mu, 4.2);
  EXPECT_DOUBLE_EQ(m.sigma, 0.0);
}

class MomentsScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(MomentsScaleSweep, ShapeInvariantUnderScaling) {
  // Skewness and kurtosis are scale/shift invariant.
  const double scale = GetParam();
  Rng rng(13);
  std::vector<double> base;
  for (int i = 0; i < 30000; ++i) {
    const double u = rng.uniform();
    base.push_back(u * u);  // skewed
  }
  // Shift proportional to scale keeps the test about shape invariance
  // rather than about catastrophic cancellation at extreme offsets.
  std::vector<double> scaled;
  for (double x : base) scaled.push_back(scale * (3.0 + x));
  const Moments mb = compute_moments(base);
  const Moments ms = compute_moments(scaled);
  EXPECT_NEAR(ms.gamma, mb.gamma, 1e-9);
  EXPECT_NEAR(ms.kappa, mb.kappa, 1e-8);
  EXPECT_NEAR(ms.sigma, scale * mb.sigma, 1e-9 * scale * mb.sigma);
}

INSTANTIATE_TEST_SUITE_P(Scales, MomentsScaleSweep,
                         ::testing::Values(1e-12, 1e-6, 1.0, 1e6));

}  // namespace
}  // namespace nsdc
