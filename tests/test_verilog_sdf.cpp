#include <gtest/gtest.h>

#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "netlist/verilogio.hpp"
#include "sta/annotate.hpp"
#include "sta/sdf.hpp"
#include "synthetic_charlib.hpp"

namespace nsdc {
namespace {

class VerilogTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::standard();
};

GateNetlist small_design(const CellLibrary& lib) {
  GateNetlist nl("tiny");
  const int a = nl.add_primary_input("a");
  const int b = nl.add_primary_input("b");
  const int g1 = nl.add_cell("u1", lib.by_name("NAND2x2"), {a, b}, "m");
  const int g2 = nl.add_cell("u2", lib.by_name("INVx1"),
                             {nl.cell(g1).out_net}, "y");
  nl.mark_primary_output(nl.cell(g2).out_net);
  return nl;
}

TEST_F(VerilogTest, WriterEmitsModuleStructure) {
  const GateNetlist nl = small_design(lib);
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("wire m;"), std::string::npos);
  EXPECT_NE(v.find("NAND2x2 u1 (.A0(a), .A1(b), .Z(m));"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST_F(VerilogTest, RoundTrip) {
  const GateNetlist nl = small_design(lib);
  const GateNetlist back = parse_verilog(write_verilog(nl), lib);
  EXPECT_EQ(back.name(), "tiny");
  EXPECT_EQ(back.num_cells(), nl.num_cells());
  EXPECT_EQ(back.num_nets(), nl.num_nets());
  EXPECT_EQ(back.depth(), nl.depth());
  EXPECT_EQ(back.primary_inputs().size(), 2u);
  EXPECT_EQ(back.primary_outputs().size(), 1u);
  EXPECT_EQ(back.cell(0).type->name(), "NAND2x2");
}

TEST_F(VerilogTest, RoundTripGeneratedDesign) {
  RandomNetlistSpec spec;
  spec.target_cells = 120;
  spec.num_primary_inputs = 10;
  spec.target_depth = 10;
  spec.seed = 77;
  const GateNetlist nl = generate_random_mapped(spec, lib);
  const GateNetlist back = parse_verilog(write_verilog(nl), lib);
  EXPECT_EQ(back.num_cells(), nl.num_cells());
  EXPECT_EQ(back.depth(), nl.depth());
}

TEST_F(VerilogTest, EscapedIdentifiersFromBenchNames) {
  // .bench numeric signal names need Verilog escaped identifiers.
  const std::string bench = "INPUT(1)\nINPUT(2)\nOUTPUT(10)\n10 = NAND(1, 2)\n";
  const GateNetlist nl = parse_bench(bench, lib, "c");
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("\\10 "), std::string::npos);
  const GateNetlist back = parse_verilog(v, lib);
  EXPECT_EQ(back.num_cells(), nl.num_cells());
  EXPECT_NE(back.find_net("10"), -1);
}

TEST_F(VerilogTest, PortOrderIndependent) {
  const std::string v = R"(
module t(a, y);
  input a;
  output y;
  INVx1 u1 (.Z(y), .A0(a));
endmodule
)";
  const GateNetlist nl = parse_verilog(v, lib);
  EXPECT_EQ(nl.num_cells(), 1u);
}

TEST_F(VerilogTest, CommentsIgnored) {
  const std::string v =
      "// header\nmodule t(a, y);\n/* block\ncomment */ input a;\n"
      "output y;\nINVx1 u1 (.A0(a), .Z(y));\nendmodule\n";
  EXPECT_EQ(parse_verilog(v, lib).num_cells(), 1u);
}

TEST_F(VerilogTest, Errors) {
  EXPECT_THROW(parse_verilog("garbage", lib), std::runtime_error);
  // Undriven net.
  EXPECT_THROW(parse_verilog("module t(y);\noutput y;\nINVx1 u1 (.A0(ghost), "
                             ".Z(y));\nendmodule\n",
                             lib),
               std::runtime_error);
  // Multiple drivers.
  EXPECT_THROW(parse_verilog("module t(a, y);\ninput a;\noutput y;\n"
                             "INVx1 u1 (.A0(a), .Z(y));\n"
                             "INVx1 u2 (.A0(a), .Z(y));\nendmodule\n",
                             lib),
               std::runtime_error);
  // Missing .Z.
  EXPECT_THROW(parse_verilog("module t(a, y);\ninput a;\noutput y;\n"
                             "INVx1 u1 (.A0(a));\nendmodule\n",
                             lib),
               std::runtime_error);
  // Combinational cycle.
  EXPECT_THROW(parse_verilog("module t(y);\noutput y;\nwire x;\n"
                             "INVx1 u1 (.A0(y), .Z(x));\n"
                             "INVx1 u2 (.A0(x), .Z(y));\nendmodule\n",
                             lib),
               std::runtime_error);
}

TEST_F(VerilogTest, SaveLoadFile) {
  const GateNetlist nl = small_design(lib);
  const std::string path = ::testing::TempDir() + "nsdc_test.v";
  ASSERT_TRUE(save_verilog(nl, path));
  EXPECT_EQ(load_verilog(path, lib).num_cells(), 2u);
  EXPECT_THROW(load_verilog("/nonexistent/x.v", lib), std::runtime_error);
}

TEST(SdfTest, StructureAndTriples) {
  const CharLib charlib = testfix::make_charlib();
  const CellLibrary cells = CellLibrary::standard();
  const NSigmaCellModel cm = NSigmaCellModel::fit(charlib);
  const NSigmaWireModel wm = NSigmaWireModel::fit(charlib, cells);
  const TechParams tech = TechParams::nominal28();

  GateNetlist nl("sdfdut");
  const int a = nl.add_primary_input("a");
  const int g1 = nl.add_cell("u1", cells.by_name("INVx2"), {a}, "m");
  const int g2 =
      nl.add_cell("u2", cells.by_name("INVx1"), {nl.cell(g1).out_net}, "y");
  nl.mark_primary_output(nl.cell(g2).out_net);
  const ParasiticDb spef = generate_parasitics(nl, tech);

  const std::string sdf = write_sdf(nl, spef, cm, wm, tech);
  EXPECT_NE(sdf.find("(SDFVERSION \"3.0\")"), std::string::npos);
  EXPECT_NE(sdf.find("(DESIGN \"sdfdut\")"), std::string::npos);
  EXPECT_NE(sdf.find("(INSTANCE u1)"), std::string::npos);
  EXPECT_NE(sdf.find("(IOPATH A0 Z"), std::string::npos);
  EXPECT_NE(sdf.find("(INTERCONNECT u1/Z u2/A0"), std::string::npos);
  // Triples are ordered min <= typ <= max: spot-check formatting exists.
  EXPECT_NE(sdf.find(":"), std::string::npos);

  const std::string path = ::testing::TempDir() + "nsdc_test.sdf";
  EXPECT_TRUE(save_sdf(nl, spef, cm, wm, tech, path));
}

}  // namespace
}  // namespace nsdc
