#include "parasitics/wiregen.hpp"

#include <gtest/gtest.h>

namespace nsdc {
namespace {

TEST(WireGen, DeterministicBySeed) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  Rng a(7), b(7);
  const RcTree t1 = gen.generate(a, {"p0", "p1"});
  const RcTree t2 = gen.generate(b, {"p0", "p1"});
  EXPECT_EQ(t1.num_nodes(), t2.num_nodes());
  EXPECT_NEAR(t1.total_cap(), t2.total_cap(), 1e-30);
  EXPECT_NEAR(t1.total_res(), t2.total_res(), 1e-12);
}

TEST(WireGen, SinkPerPinName) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  Rng rng(9);
  const RcTree t = gen.generate(rng, {"a", "b", "c"});
  EXPECT_EQ(t.sinks().size(), 3u);
  EXPECT_GT(t.sink_node("a"), 0);
  EXPECT_GT(t.sink_node("b"), 0);
  EXPECT_GT(t.sink_node("c"), 0);
}

TEST(WireGen, CapMatchesTechPerLength) {
  // A line of length L must carry ~ L * c_per_m total capacitance.
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  const RcTree t = gen.line(50.0, 8, "Z");
  EXPECT_NEAR(t.total_cap(), 50e-6 * tech.wire_c_per_m, 1e-18);
  EXPECT_NEAR(t.total_res(), 50e-6 * tech.wire_r_per_m, 1e-6);
}

TEST(WireGen, LineSegmentsAndSink) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  const RcTree t = gen.line(10.0, 4, "OUT");
  EXPECT_EQ(t.num_nodes(), 5);  // root + 4 segments
  EXPECT_EQ(t.sink_node("OUT"), 4);
}

TEST(WireGen, LongerNetsHaveMoreDelay) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  const RcTree short_net = gen.line(10.0, 5, "Z");
  const RcTree long_net = gen.line(100.0, 5, "Z");
  EXPECT_GT(long_net.elmore(long_net.sink_node("Z")),
            10.0 * short_net.elmore(short_net.sink_node("Z")));
}

TEST(WireGen, FanoutGrowsCap) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  double cap1 = 0.0, cap8 = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Rng r1(s), r8(s);
    cap1 += gen.generate(r1, {"a"}).total_cap();
    std::vector<std::string> pins;
    for (int i = 0; i < 8; ++i) pins.push_back("p" + std::to_string(i));
    cap8 += gen.generate(r8, pins).total_cap();
  }
  EXPECT_GT(cap8, cap1);
}

}  // namespace
}  // namespace nsdc
