#include <gtest/gtest.h>

#include <cmath>

#include "pdk/cellgen.hpp"
#include "pdk/cells.hpp"
#include "pdk/varmodel.hpp"
#include "stats/moments.hpp"

namespace nsdc {
namespace {

TEST(CellLibrary, StandardContents) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.cells().size(), 24u);  // 6 functions x 4 strengths
  EXPECT_TRUE(lib.contains("INVx1"));
  EXPECT_TRUE(lib.contains("AOI21x8"));
  EXPECT_FALSE(lib.contains("XOR2x1"));
  EXPECT_THROW(lib.by_name("XOR2x1"), std::out_of_range);
}

TEST(CellLibrary, LookupByFunc) {
  const CellLibrary lib = CellLibrary::standard();
  const CellType& c = lib.by_func(CellFunc::kNand2, 4);
  EXPECT_EQ(c.name(), "NAND2x4");
  EXPECT_EQ(c.strength(), 4);
  EXPECT_THROW(lib.by_func(CellFunc::kNand2, 3), std::out_of_range);
}

TEST(CellType, Arity) {
  EXPECT_EQ(CellType(CellFunc::kInv, 1).num_inputs(), 1);
  EXPECT_EQ(CellType(CellFunc::kNand2, 1).num_inputs(), 2);
  EXPECT_EQ(CellType(CellFunc::kAoi21, 1).num_inputs(), 3);
}

TEST(CellType, Inverting) {
  EXPECT_TRUE(CellType(CellFunc::kInv, 1).inverting());
  EXPECT_TRUE(CellType(CellFunc::kNor2, 1).inverting());
  EXPECT_FALSE(CellType(CellFunc::kBuf, 1).inverting());
}

TEST(CellType, StackCounts) {
  // Paper Eq. 5's n: NAND2 stacks two NMOS, NOR2 two PMOS, INV one.
  EXPECT_EQ(CellType(CellFunc::kInv, 1).stack_count(), 1);
  EXPECT_EQ(CellType(CellFunc::kNand2, 1).stack_count(), 2);
  EXPECT_EQ(CellType(CellFunc::kNor2, 1).stack_count(), 2);
  EXPECT_EQ(CellType(CellFunc::kAoi21, 1).stack_count(), 2);
}

TEST(CellType, InputCapScalesWithStrength) {
  const TechParams tech = TechParams::nominal28();
  const double c1 = CellType(CellFunc::kInv, 1).input_cap(tech, 0);
  const double c4 = CellType(CellFunc::kInv, 4).input_cap(tech, 0);
  EXPECT_GT(c1, 0.1e-15);
  EXPECT_LT(c1, 2e-15);
  EXPECT_NEAR(c4 / c1, 4.0, 1e-9);
}

TEST(CellType, InputCapPinBounds) {
  const TechParams tech = TechParams::nominal28();
  const CellType nand2(CellFunc::kNand2, 1);
  EXPECT_GT(nand2.input_cap(tech, 0), 0.0);
  EXPECT_GT(nand2.input_cap(tech, 1), 0.0);
  EXPECT_THROW(nand2.input_cap(tech, 2), std::out_of_range);
  EXPECT_THROW(nand2.input_cap(tech, -1), std::out_of_range);
}

TEST(CellType, DriveResistanceFallsWithStrength) {
  const TechParams tech = TechParams::nominal28();
  const double r1 = CellType(CellFunc::kInv, 1).drive_resistance_estimate(tech);
  const double r8 = CellType(CellFunc::kInv, 8).drive_resistance_estimate(tech);
  EXPECT_NEAR(r1 / r8, 8.0, 0.1);
}

TEST(CellType, BadStrengthThrows) {
  EXPECT_THROW(CellType(CellFunc::kInv, 0), std::invalid_argument);
}

TEST(SideInputs, NonControllingValues) {
  // NAND2: other input high; NOR2: other input low.
  EXPECT_EQ(side_input_values(CellFunc::kNand2, 0)[1], 1.0);
  EXPECT_EQ(side_input_values(CellFunc::kNor2, 0)[1], 0.0);
  // AOI21 A1 switching: A2 high, B low.
  const auto aoi = side_input_values(CellFunc::kAoi21, 0);
  EXPECT_EQ(aoi[1], 1.0);
  EXPECT_EQ(aoi[2], 0.0);
  // OAI21 B switching: one A input on.
  const auto oai = side_input_values(CellFunc::kOai21, 2);
  EXPECT_EQ(oai[0], 1.0);
  EXPECT_THROW(side_input_values(CellFunc::kInv, 1), std::out_of_range);
}

TEST(Topology, TransistorCounts) {
  EXPECT_EQ(cell_topology(CellFunc::kInv).fets.size(), 2u);
  EXPECT_EQ(cell_topology(CellFunc::kBuf).fets.size(), 4u);
  EXPECT_EQ(cell_topology(CellFunc::kNand2).fets.size(), 4u);
  EXPECT_EQ(cell_topology(CellFunc::kNor2).fets.size(), 4u);
  EXPECT_EQ(cell_topology(CellFunc::kAoi21).fets.size(), 6u);
  EXPECT_EQ(cell_topology(CellFunc::kOai21).fets.size(), 6u);
}

TEST(Netlister, InstantiateCreatesDevices) {
  const TechParams tech = TechParams::nominal28();
  Circuit ckt;
  const NodeId vdd = ckt.make_node("vdd");
  const NodeId in = ckt.make_node("in");
  CellNetlister nl(tech);
  const CellLibrary lib = CellLibrary::standard();
  const NodeId in_nodes[] = {in};
  const NodeId out = nl.instantiate(ckt, lib.by_name("INVx2"), in_nodes, vdd,
                                    GlobalCorner::nominal(), nullptr);
  EXPECT_GT(out, 0);
  EXPECT_EQ(ckt.mosfets().size(), 2u);
  EXPECT_FALSE(ckt.capacitors().empty());
  // Widths carry the x2 strength.
  EXPECT_NEAR(ckt.mosfets()[0].params.w, 2.0 * tech.w_min_n, 1e-12);
}

TEST(Netlister, ArityMismatchThrows) {
  const TechParams tech = TechParams::nominal28();
  Circuit ckt;
  const NodeId vdd = ckt.make_node("vdd");
  const NodeId in = ckt.make_node("in");
  CellNetlister nl(tech);
  const CellLibrary lib = CellLibrary::standard();
  const NodeId in_nodes[] = {in};
  EXPECT_THROW(nl.instantiate(ckt, lib.by_name("NAND2x1"), in_nodes, vdd,
                              GlobalCorner::nominal(), nullptr),
               std::invalid_argument);
}

TEST(Netlister, CornerShiftsParameters) {
  const TechParams tech = TechParams::nominal28();
  Circuit ckt;
  const NodeId vdd = ckt.make_node("vdd");
  const NodeId in = ckt.make_node("in");
  CellNetlister nl(tech);
  const CellLibrary lib = CellLibrary::standard();
  GlobalCorner corner;
  corner.dvth_n = 0.05;
  corner.mu_n_factor = 0.9;
  const NodeId in_nodes[] = {in};
  nl.instantiate(ckt, lib.by_name("INVx1"), in_nodes, vdd, corner, nullptr);
  const auto& fets = ckt.mosfets();
  const auto& nfet = fets[0].params.nmos ? fets[0].params : fets[1].params;
  EXPECT_NEAR(nfet.vth, tech.vth_n + 0.05, 1e-12);
  EXPECT_NEAR(nfet.kp, tech.kp_n * 0.9, 1e-12);
}

TEST(VariationModel, PelgromScaling) {
  const TechParams tech = TechParams::nominal28();
  const VariationModel vm(tech);
  const double s1 = vm.sigma_vth_local(100e-9, 30e-9);
  const double s4 = vm.sigma_vth_local(400e-9, 30e-9);
  EXPECT_NEAR(s1 / s4, 2.0, 1e-9);  // sigma ~ 1/sqrt(W L)
  EXPECT_GT(s1, 0.01);  // tens of mV for a minimum device
  EXPECT_LT(s1, 0.1);
}

TEST(VariationModel, GlobalCornerStatistics) {
  const TechParams tech = TechParams::nominal28();
  const VariationModel vm(tech);
  Rng rng(3);
  MomentAccumulator dvth;
  for (int i = 0; i < 50000; ++i) {
    const GlobalCorner g = vm.sample_global(rng);
    dvth.add(g.dvth_n);
    EXPECT_GT(g.mu_n_factor, 0.0);
    EXPECT_GT(g.wire_r_factor, 0.0);
  }
  const Moments m = dvth.moments();
  EXPECT_NEAR(m.mu, 0.0, 1e-3);
  EXPECT_NEAR(m.sigma, tech.sigma_vth_global, 0.05 * tech.sigma_vth_global);
}

TEST(VariationModel, LocalMuFactorPositive) {
  const TechParams tech = TechParams::nominal28();
  const VariationModel vm(tech);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(vm.sample_mu_factor_local(rng, 100e-9, 30e-9), 0.0);
  }
}

TEST(Tech, AtVoltageKeepsProcess) {
  const TechParams tech = TechParams::nominal28();
  const TechParams t05 = tech.at_voltage(0.5);
  EXPECT_DOUBLE_EQ(t05.vdd, 0.5);
  EXPECT_DOUBLE_EQ(t05.vth_n, tech.vth_n);
  EXPECT_DOUBLE_EQ(t05.avt, tech.avt);
}

class StrengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(StrengthSweep, NamesAndCapsConsistent) {
  const int s = GetParam();
  const TechParams tech = TechParams::nominal28();
  const CellType c(CellFunc::kNor2, s);
  EXPECT_EQ(c.name(), "NOR2x" + std::to_string(s));
  EXPECT_NEAR(c.input_cap(tech, 0) / CellType(CellFunc::kNor2, 1).input_cap(tech, 0),
              s, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strengths, StrengthSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace nsdc
