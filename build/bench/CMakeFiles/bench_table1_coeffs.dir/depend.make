# Empty dependencies file for bench_table1_coeffs.
# This may be replaced when dependencies are built.
