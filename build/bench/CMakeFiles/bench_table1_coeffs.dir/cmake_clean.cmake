file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_coeffs.dir/bench_table1_coeffs.cpp.o"
  "CMakeFiles/bench_table1_coeffs.dir/bench_table1_coeffs.cpp.o.d"
  "bench_table1_coeffs"
  "bench_table1_coeffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_coeffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
