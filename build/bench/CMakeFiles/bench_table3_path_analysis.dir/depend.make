# Empty dependencies file for bench_table3_path_analysis.
# This may be replaced when dependencies are built.
