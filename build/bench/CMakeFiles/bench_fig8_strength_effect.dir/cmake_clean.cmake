file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_strength_effect.dir/bench_fig8_strength_effect.cpp.o"
  "CMakeFiles/bench_fig8_strength_effect.dir/bench_fig8_strength_effect.cpp.o.d"
  "bench_fig8_strength_effect"
  "bench_fig8_strength_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_strength_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
