# Empty compiler generated dependencies file for bench_fig8_strength_effect.
# This may be replaced when dependencies are built.
