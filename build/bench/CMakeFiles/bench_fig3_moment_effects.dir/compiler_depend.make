# Empty compiler generated dependencies file for bench_fig3_moment_effects.
# This may be replaced when dependencies are built.
