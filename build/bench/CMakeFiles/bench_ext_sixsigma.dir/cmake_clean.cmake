file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sixsigma.dir/bench_ext_sixsigma.cpp.o"
  "CMakeFiles/bench_ext_sixsigma.dir/bench_ext_sixsigma.cpp.o.d"
  "bench_ext_sixsigma"
  "bench_ext_sixsigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sixsigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
