# Empty dependencies file for bench_ext_sixsigma.
# This may be replaced when dependencies are built.
