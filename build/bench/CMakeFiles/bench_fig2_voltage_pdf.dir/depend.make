# Empty dependencies file for bench_fig2_voltage_pdf.
# This may be replaced when dependencies are built.
