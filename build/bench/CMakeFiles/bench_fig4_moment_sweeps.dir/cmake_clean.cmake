file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_moment_sweeps.dir/bench_fig4_moment_sweeps.cpp.o"
  "CMakeFiles/bench_fig4_moment_sweeps.dir/bench_fig4_moment_sweeps.cpp.o.d"
  "bench_fig4_moment_sweeps"
  "bench_fig4_moment_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_moment_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
