# Empty dependencies file for bench_fig4_moment_sweeps.
# This may be replaced when dependencies are built.
