file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_c432_wires.dir/bench_fig11_c432_wires.cpp.o"
  "CMakeFiles/bench_fig11_c432_wires.dir/bench_fig11_c432_wires.cpp.o.d"
  "bench_fig11_c432_wires"
  "bench_fig11_c432_wires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_c432_wires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
