# Empty dependencies file for bench_fig11_c432_wires.
# This may be replaced when dependencies are built.
