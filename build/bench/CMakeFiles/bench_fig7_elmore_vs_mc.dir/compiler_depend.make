# Empty compiler generated dependencies file for bench_fig7_elmore_vs_mc.
# This may be replaced when dependencies are built.
