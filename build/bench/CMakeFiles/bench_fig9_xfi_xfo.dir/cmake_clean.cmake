file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_xfi_xfo.dir/bench_fig9_xfi_xfo.cpp.o"
  "CMakeFiles/bench_fig9_xfi_xfo.dir/bench_fig9_xfi_xfo.cpp.o.d"
  "bench_fig9_xfi_xfo"
  "bench_fig9_xfi_xfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_xfi_xfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
