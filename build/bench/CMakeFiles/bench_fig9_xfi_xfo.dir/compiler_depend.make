# Empty compiler generated dependencies file for bench_fig9_xfi_xfo.
# This may be replaced when dependencies are built.
