
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/grid.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/grid.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/grid.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/moments.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/moments.cpp.o.d"
  "/root/repo/src/stats/optimize.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/optimize.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/optimize.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/quantiles.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/quantiles.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/nsdc_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/nsdc_stats.dir/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
