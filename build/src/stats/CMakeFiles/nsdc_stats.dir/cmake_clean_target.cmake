file(REMOVE_RECURSE
  "libnsdc_stats.a"
)
