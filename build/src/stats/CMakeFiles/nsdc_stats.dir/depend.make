# Empty dependencies file for nsdc_stats.
# This may be replaced when dependencies are built.
