file(REMOVE_RECURSE
  "CMakeFiles/nsdc_stats.dir/distributions.cpp.o"
  "CMakeFiles/nsdc_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/grid.cpp.o"
  "CMakeFiles/nsdc_stats.dir/grid.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/histogram.cpp.o"
  "CMakeFiles/nsdc_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/moments.cpp.o"
  "CMakeFiles/nsdc_stats.dir/moments.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/optimize.cpp.o"
  "CMakeFiles/nsdc_stats.dir/optimize.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/quantiles.cpp.o"
  "CMakeFiles/nsdc_stats.dir/quantiles.cpp.o.d"
  "CMakeFiles/nsdc_stats.dir/regression.cpp.o"
  "CMakeFiles/nsdc_stats.dir/regression.cpp.o.d"
  "libnsdc_stats.a"
  "libnsdc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
