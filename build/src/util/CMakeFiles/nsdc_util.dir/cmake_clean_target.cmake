file(REMOVE_RECURSE
  "libnsdc_util.a"
)
