file(REMOVE_RECURSE
  "CMakeFiles/nsdc_util.dir/log.cpp.o"
  "CMakeFiles/nsdc_util.dir/log.cpp.o.d"
  "CMakeFiles/nsdc_util.dir/rng.cpp.o"
  "CMakeFiles/nsdc_util.dir/rng.cpp.o.d"
  "CMakeFiles/nsdc_util.dir/table.cpp.o"
  "CMakeFiles/nsdc_util.dir/table.cpp.o.d"
  "CMakeFiles/nsdc_util.dir/threading.cpp.o"
  "CMakeFiles/nsdc_util.dir/threading.cpp.o.d"
  "CMakeFiles/nsdc_util.dir/units.cpp.o"
  "CMakeFiles/nsdc_util.dir/units.cpp.o.d"
  "libnsdc_util.a"
  "libnsdc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
