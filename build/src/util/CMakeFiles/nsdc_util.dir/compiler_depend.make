# Empty compiler generated dependencies file for nsdc_util.
# This may be replaced when dependencies are built.
