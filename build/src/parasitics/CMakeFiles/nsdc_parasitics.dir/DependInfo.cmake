
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parasitics/rctree.cpp" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/rctree.cpp.o" "gcc" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/rctree.cpp.o.d"
  "/root/repo/src/parasitics/spef.cpp" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/spef.cpp.o" "gcc" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/spef.cpp.o.d"
  "/root/repo/src/parasitics/wiregen.cpp" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/wiregen.cpp.o" "gcc" "src/parasitics/CMakeFiles/nsdc_parasitics.dir/wiregen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/nsdc_pdk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
