file(REMOVE_RECURSE
  "CMakeFiles/nsdc_parasitics.dir/rctree.cpp.o"
  "CMakeFiles/nsdc_parasitics.dir/rctree.cpp.o.d"
  "CMakeFiles/nsdc_parasitics.dir/spef.cpp.o"
  "CMakeFiles/nsdc_parasitics.dir/spef.cpp.o.d"
  "CMakeFiles/nsdc_parasitics.dir/wiregen.cpp.o"
  "CMakeFiles/nsdc_parasitics.dir/wiregen.cpp.o.d"
  "libnsdc_parasitics.a"
  "libnsdc_parasitics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_parasitics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
