# Empty dependencies file for nsdc_parasitics.
# This may be replaced when dependencies are built.
