file(REMOVE_RECURSE
  "libnsdc_parasitics.a"
)
