file(REMOVE_RECURSE
  "CMakeFiles/nsdc_spice.dir/circuit.cpp.o"
  "CMakeFiles/nsdc_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/nsdc_spice.dir/matrix.cpp.o"
  "CMakeFiles/nsdc_spice.dir/matrix.cpp.o.d"
  "CMakeFiles/nsdc_spice.dir/transient.cpp.o"
  "CMakeFiles/nsdc_spice.dir/transient.cpp.o.d"
  "CMakeFiles/nsdc_spice.dir/waveform.cpp.o"
  "CMakeFiles/nsdc_spice.dir/waveform.cpp.o.d"
  "libnsdc_spice.a"
  "libnsdc_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
