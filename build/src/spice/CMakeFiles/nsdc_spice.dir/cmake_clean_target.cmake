file(REMOVE_RECURSE
  "libnsdc_spice.a"
)
