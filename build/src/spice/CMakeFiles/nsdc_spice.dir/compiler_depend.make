# Empty compiler generated dependencies file for nsdc_spice.
# This may be replaced when dependencies are built.
