file(REMOVE_RECURSE
  "libnsdc_baselines.a"
)
