# Empty dependencies file for nsdc_baselines.
# This may be replaced when dependencies are built.
