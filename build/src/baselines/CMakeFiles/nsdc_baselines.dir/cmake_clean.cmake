file(REMOVE_RECURSE
  "CMakeFiles/nsdc_baselines.dir/cellmodels.cpp.o"
  "CMakeFiles/nsdc_baselines.dir/cellmodels.cpp.o.d"
  "CMakeFiles/nsdc_baselines.dir/corner_sta.cpp.o"
  "CMakeFiles/nsdc_baselines.dir/corner_sta.cpp.o.d"
  "CMakeFiles/nsdc_baselines.dir/correction.cpp.o"
  "CMakeFiles/nsdc_baselines.dir/correction.cpp.o.d"
  "CMakeFiles/nsdc_baselines.dir/mc_reference.cpp.o"
  "CMakeFiles/nsdc_baselines.dir/mc_reference.cpp.o.d"
  "CMakeFiles/nsdc_baselines.dir/ml_wire.cpp.o"
  "CMakeFiles/nsdc_baselines.dir/ml_wire.cpp.o.d"
  "libnsdc_baselines.a"
  "libnsdc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
