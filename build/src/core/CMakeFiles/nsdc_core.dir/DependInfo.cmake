
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/nsigma_cell.cpp" "src/core/CMakeFiles/nsdc_core.dir/nsigma_cell.cpp.o" "gcc" "src/core/CMakeFiles/nsdc_core.dir/nsigma_cell.cpp.o.d"
  "/root/repo/src/core/nsigma_wire.cpp" "src/core/CMakeFiles/nsdc_core.dir/nsigma_wire.cpp.o" "gcc" "src/core/CMakeFiles/nsdc_core.dir/nsigma_wire.cpp.o.d"
  "/root/repo/src/core/pathdelay.cpp" "src/core/CMakeFiles/nsdc_core.dir/pathdelay.cpp.o" "gcc" "src/core/CMakeFiles/nsdc_core.dir/pathdelay.cpp.o.d"
  "/root/repo/src/core/yield.cpp" "src/core/CMakeFiles/nsdc_core.dir/yield.cpp.o" "gcc" "src/core/CMakeFiles/nsdc_core.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nsdc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/nsdc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/parasitics/CMakeFiles/nsdc_parasitics.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/nsdc_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
