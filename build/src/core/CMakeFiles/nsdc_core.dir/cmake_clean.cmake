file(REMOVE_RECURSE
  "CMakeFiles/nsdc_core.dir/nsigma_cell.cpp.o"
  "CMakeFiles/nsdc_core.dir/nsigma_cell.cpp.o.d"
  "CMakeFiles/nsdc_core.dir/nsigma_wire.cpp.o"
  "CMakeFiles/nsdc_core.dir/nsigma_wire.cpp.o.d"
  "CMakeFiles/nsdc_core.dir/pathdelay.cpp.o"
  "CMakeFiles/nsdc_core.dir/pathdelay.cpp.o.d"
  "CMakeFiles/nsdc_core.dir/yield.cpp.o"
  "CMakeFiles/nsdc_core.dir/yield.cpp.o.d"
  "libnsdc_core.a"
  "libnsdc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
