file(REMOVE_RECURSE
  "libnsdc_core.a"
)
