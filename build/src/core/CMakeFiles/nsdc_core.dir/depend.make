# Empty dependencies file for nsdc_core.
# This may be replaced when dependencies are built.
