file(REMOVE_RECURSE
  "CMakeFiles/nsdc_netlist.dir/benchio.cpp.o"
  "CMakeFiles/nsdc_netlist.dir/benchio.cpp.o.d"
  "CMakeFiles/nsdc_netlist.dir/designgen.cpp.o"
  "CMakeFiles/nsdc_netlist.dir/designgen.cpp.o.d"
  "CMakeFiles/nsdc_netlist.dir/netlist.cpp.o"
  "CMakeFiles/nsdc_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/nsdc_netlist.dir/verilogio.cpp.o"
  "CMakeFiles/nsdc_netlist.dir/verilogio.cpp.o.d"
  "libnsdc_netlist.a"
  "libnsdc_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
