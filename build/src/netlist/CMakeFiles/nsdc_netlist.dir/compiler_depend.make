# Empty compiler generated dependencies file for nsdc_netlist.
# This may be replaced when dependencies are built.
