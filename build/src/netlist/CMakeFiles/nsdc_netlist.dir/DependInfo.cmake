
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/benchio.cpp" "src/netlist/CMakeFiles/nsdc_netlist.dir/benchio.cpp.o" "gcc" "src/netlist/CMakeFiles/nsdc_netlist.dir/benchio.cpp.o.d"
  "/root/repo/src/netlist/designgen.cpp" "src/netlist/CMakeFiles/nsdc_netlist.dir/designgen.cpp.o" "gcc" "src/netlist/CMakeFiles/nsdc_netlist.dir/designgen.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/nsdc_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/nsdc_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilogio.cpp" "src/netlist/CMakeFiles/nsdc_netlist.dir/verilogio.cpp.o" "gcc" "src/netlist/CMakeFiles/nsdc_netlist.dir/verilogio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/nsdc_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
