file(REMOVE_RECURSE
  "libnsdc_netlist.a"
)
