file(REMOVE_RECURSE
  "CMakeFiles/nsdc_sta.dir/annotate.cpp.o"
  "CMakeFiles/nsdc_sta.dir/annotate.cpp.o.d"
  "CMakeFiles/nsdc_sta.dir/engine.cpp.o"
  "CMakeFiles/nsdc_sta.dir/engine.cpp.o.d"
  "CMakeFiles/nsdc_sta.dir/sdf.cpp.o"
  "CMakeFiles/nsdc_sta.dir/sdf.cpp.o.d"
  "CMakeFiles/nsdc_sta.dir/statprop.cpp.o"
  "CMakeFiles/nsdc_sta.dir/statprop.cpp.o.d"
  "CMakeFiles/nsdc_sta.dir/timer.cpp.o"
  "CMakeFiles/nsdc_sta.dir/timer.cpp.o.d"
  "libnsdc_sta.a"
  "libnsdc_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
