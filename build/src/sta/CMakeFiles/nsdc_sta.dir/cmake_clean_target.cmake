file(REMOVE_RECURSE
  "libnsdc_sta.a"
)
