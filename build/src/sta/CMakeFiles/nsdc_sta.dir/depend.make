# Empty dependencies file for nsdc_sta.
# This may be replaced when dependencies are built.
