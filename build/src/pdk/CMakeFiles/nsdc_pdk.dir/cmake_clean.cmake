file(REMOVE_RECURSE
  "CMakeFiles/nsdc_pdk.dir/cellgen.cpp.o"
  "CMakeFiles/nsdc_pdk.dir/cellgen.cpp.o.d"
  "CMakeFiles/nsdc_pdk.dir/cells.cpp.o"
  "CMakeFiles/nsdc_pdk.dir/cells.cpp.o.d"
  "CMakeFiles/nsdc_pdk.dir/tech.cpp.o"
  "CMakeFiles/nsdc_pdk.dir/tech.cpp.o.d"
  "CMakeFiles/nsdc_pdk.dir/varmodel.cpp.o"
  "CMakeFiles/nsdc_pdk.dir/varmodel.cpp.o.d"
  "libnsdc_pdk.a"
  "libnsdc_pdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_pdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
