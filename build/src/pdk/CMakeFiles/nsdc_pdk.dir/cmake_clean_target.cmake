file(REMOVE_RECURSE
  "libnsdc_pdk.a"
)
