src/pdk/CMakeFiles/nsdc_pdk.dir/tech.cpp.o: /root/repo/src/pdk/tech.cpp \
 /usr/include/stdc-predef.h /root/repo/src/pdk/tech.hpp
