# Empty dependencies file for nsdc_pdk.
# This may be replaced when dependencies are built.
