
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdk/cellgen.cpp" "src/pdk/CMakeFiles/nsdc_pdk.dir/cellgen.cpp.o" "gcc" "src/pdk/CMakeFiles/nsdc_pdk.dir/cellgen.cpp.o.d"
  "/root/repo/src/pdk/cells.cpp" "src/pdk/CMakeFiles/nsdc_pdk.dir/cells.cpp.o" "gcc" "src/pdk/CMakeFiles/nsdc_pdk.dir/cells.cpp.o.d"
  "/root/repo/src/pdk/tech.cpp" "src/pdk/CMakeFiles/nsdc_pdk.dir/tech.cpp.o" "gcc" "src/pdk/CMakeFiles/nsdc_pdk.dir/tech.cpp.o.d"
  "/root/repo/src/pdk/varmodel.cpp" "src/pdk/CMakeFiles/nsdc_pdk.dir/varmodel.cpp.o" "gcc" "src/pdk/CMakeFiles/nsdc_pdk.dir/varmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
