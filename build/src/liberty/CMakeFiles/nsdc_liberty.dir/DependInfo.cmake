
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/charlib.cpp" "src/liberty/CMakeFiles/nsdc_liberty.dir/charlib.cpp.o" "gcc" "src/liberty/CMakeFiles/nsdc_liberty.dir/charlib.cpp.o.d"
  "/root/repo/src/liberty/libwriter.cpp" "src/liberty/CMakeFiles/nsdc_liberty.dir/libwriter.cpp.o" "gcc" "src/liberty/CMakeFiles/nsdc_liberty.dir/libwriter.cpp.o.d"
  "/root/repo/src/liberty/stagesim.cpp" "src/liberty/CMakeFiles/nsdc_liberty.dir/stagesim.cpp.o" "gcc" "src/liberty/CMakeFiles/nsdc_liberty.dir/stagesim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nsdc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/nsdc_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/parasitics/CMakeFiles/nsdc_parasitics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
