file(REMOVE_RECURSE
  "libnsdc_liberty.a"
)
