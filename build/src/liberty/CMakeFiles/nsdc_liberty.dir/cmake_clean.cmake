file(REMOVE_RECURSE
  "CMakeFiles/nsdc_liberty.dir/charlib.cpp.o"
  "CMakeFiles/nsdc_liberty.dir/charlib.cpp.o.d"
  "CMakeFiles/nsdc_liberty.dir/libwriter.cpp.o"
  "CMakeFiles/nsdc_liberty.dir/libwriter.cpp.o.d"
  "CMakeFiles/nsdc_liberty.dir/stagesim.cpp.o"
  "CMakeFiles/nsdc_liberty.dir/stagesim.cpp.o.d"
  "libnsdc_liberty.a"
  "libnsdc_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsdc_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
