# Empty dependencies file for nsdc_liberty.
# This may be replaced when dependencies are built.
