# Empty dependencies file for test_benchio.
# This may be replaced when dependencies are built.
