file(REMOVE_RECURSE
  "CMakeFiles/test_benchio.dir/test_benchio.cpp.o"
  "CMakeFiles/test_benchio.dir/test_benchio.cpp.o.d"
  "test_benchio"
  "test_benchio.pdb"
  "test_benchio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
