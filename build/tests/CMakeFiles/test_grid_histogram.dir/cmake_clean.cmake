file(REMOVE_RECURSE
  "CMakeFiles/test_grid_histogram.dir/test_grid_histogram.cpp.o"
  "CMakeFiles/test_grid_histogram.dir/test_grid_histogram.cpp.o.d"
  "test_grid_histogram"
  "test_grid_histogram.pdb"
  "test_grid_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
