# Empty compiler generated dependencies file for test_grid_histogram.
# This may be replaced when dependencies are built.
