file(REMOVE_RECURSE
  "CMakeFiles/test_pathdelay.dir/test_pathdelay.cpp.o"
  "CMakeFiles/test_pathdelay.dir/test_pathdelay.cpp.o.d"
  "test_pathdelay"
  "test_pathdelay.pdb"
  "test_pathdelay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
