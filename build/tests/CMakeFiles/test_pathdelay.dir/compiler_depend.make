# Empty compiler generated dependencies file for test_pathdelay.
# This may be replaced when dependencies are built.
