# Empty compiler generated dependencies file for test_verilog_sdf.
# This may be replaced when dependencies are built.
