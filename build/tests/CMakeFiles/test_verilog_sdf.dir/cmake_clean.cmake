file(REMOVE_RECURSE
  "CMakeFiles/test_verilog_sdf.dir/test_verilog_sdf.cpp.o"
  "CMakeFiles/test_verilog_sdf.dir/test_verilog_sdf.cpp.o.d"
  "test_verilog_sdf"
  "test_verilog_sdf.pdb"
  "test_verilog_sdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verilog_sdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
