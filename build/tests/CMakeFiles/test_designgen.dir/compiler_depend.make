# Empty compiler generated dependencies file for test_designgen.
# This may be replaced when dependencies are built.
