file(REMOVE_RECURSE
  "CMakeFiles/test_designgen.dir/test_designgen.cpp.o"
  "CMakeFiles/test_designgen.dir/test_designgen.cpp.o.d"
  "test_designgen"
  "test_designgen.pdb"
  "test_designgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_designgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
