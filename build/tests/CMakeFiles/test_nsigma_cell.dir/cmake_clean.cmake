file(REMOVE_RECURSE
  "CMakeFiles/test_nsigma_cell.dir/test_nsigma_cell.cpp.o"
  "CMakeFiles/test_nsigma_cell.dir/test_nsigma_cell.cpp.o.d"
  "test_nsigma_cell"
  "test_nsigma_cell.pdb"
  "test_nsigma_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsigma_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
