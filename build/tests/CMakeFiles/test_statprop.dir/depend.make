# Empty dependencies file for test_statprop.
# This may be replaced when dependencies are built.
