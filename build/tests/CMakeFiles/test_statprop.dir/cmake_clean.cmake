file(REMOVE_RECURSE
  "CMakeFiles/test_statprop.dir/test_statprop.cpp.o"
  "CMakeFiles/test_statprop.dir/test_statprop.cpp.o.d"
  "test_statprop"
  "test_statprop.pdb"
  "test_statprop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
