file(REMOVE_RECURSE
  "CMakeFiles/test_pdk.dir/test_pdk.cpp.o"
  "CMakeFiles/test_pdk.dir/test_pdk.cpp.o.d"
  "test_pdk"
  "test_pdk.pdb"
  "test_pdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
