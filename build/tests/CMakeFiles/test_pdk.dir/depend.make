# Empty dependencies file for test_pdk.
# This may be replaced when dependencies are built.
