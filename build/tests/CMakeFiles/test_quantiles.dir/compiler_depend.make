# Empty compiler generated dependencies file for test_quantiles.
# This may be replaced when dependencies are built.
