file(REMOVE_RECURSE
  "CMakeFiles/test_wiregen.dir/test_wiregen.cpp.o"
  "CMakeFiles/test_wiregen.dir/test_wiregen.cpp.o.d"
  "test_wiregen"
  "test_wiregen.pdb"
  "test_wiregen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wiregen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
