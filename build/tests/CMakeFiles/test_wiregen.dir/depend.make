# Empty dependencies file for test_wiregen.
# This may be replaced when dependencies are built.
