# Empty compiler generated dependencies file for test_nsigma_wire.
# This may be replaced when dependencies are built.
