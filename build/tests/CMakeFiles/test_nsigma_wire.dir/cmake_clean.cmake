file(REMOVE_RECURSE
  "CMakeFiles/test_nsigma_wire.dir/test_nsigma_wire.cpp.o"
  "CMakeFiles/test_nsigma_wire.dir/test_nsigma_wire.cpp.o.d"
  "test_nsigma_wire"
  "test_nsigma_wire.pdb"
  "test_nsigma_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsigma_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
