
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/characterize_library.cpp" "examples/CMakeFiles/characterize_library.dir/characterize_library.cpp.o" "gcc" "examples/CMakeFiles/characterize_library.dir/characterize_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/nsdc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/nsdc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/nsdc_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nsdc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/parasitics/CMakeFiles/nsdc_parasitics.dir/DependInfo.cmake"
  "/root/repo/build/src/pdk/CMakeFiles/nsdc_pdk.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/nsdc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nsdc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsdc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
