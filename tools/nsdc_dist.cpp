// nsdc_dist: fault-tolerant multi-process shard runner (DESIGN.md §14).
// The coordinator mode (default) fork/execs this same binary in --worker
// mode N times, partitions the run into shard work units — accumulation
// blocks for Monte Carlo, sorted-PO slices for levelized STA — and
// supervises the fleet: heartbeat and deadline watchdogs, waitpid crash
// detection, deterministic exponential-backoff retries, bounded worker
// respawn, and checkpoint-validated merge. The merged statistics are
// byte-identical to a single-process run at any worker count, kill
// schedule, or retry history.
//
// Usage (coordinator):
//   nsdc_dist [--mode mc|sta] [--workers N] [--shards N] [--samples N]
//             [--seed S] [--design mul|adder|random] [--size N]
//             [--design-seed S] [--workdir PATH] [--worker-threads N]
//             [--retries N] [--deadline-s X] [--heartbeat-ms N]
//             [--heartbeat-timeout-s X] [--verbose]
//
// --worker flips this process into the shard-worker body (internal; the
// coordinator passes --endpoint/--worker-id and the bundle spec).
//
// Exit codes: 0 complete; 14 (kExitPartial) when retries/spawn budget ran
// out and the result is a diagnosed partial — never an abort; 3/10-13 as
// every other tool.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "util/argparse.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"

using namespace nsdc;

namespace {

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

std::string default_workdir() {
  char tmpl[] = "/tmp/nsdc_dist_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    throw IoError("nsdc_dist: cannot create a temporary workdir");
  }
  return std::string(tmpl);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode mc|sta] [--workers N] [--shards N] [--samples N]\n"
      "          [--seed S] [--design mul|adder|random] [--size N]\n"
      "          [--design-seed S] [--workdir PATH] [--worker-threads N]\n"
      "          [--retries N] [--deadline-s X] [--heartbeat-ms N]\n"
      "          [--heartbeat-timeout-s X] [--verbose]\n",
      argv0);
  return 2;
}

int tool_main(int argc, char** argv) {
  bool worker_mode = false;
  dist::DistOptions opt;
  dist::WorkerConfig wcfg;
  std::string endpoint_spec;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool has_val = i + 1 < argc;
    if (std::strcmp(a, "--worker") == 0) {
      worker_mode = true;
    } else if (std::strcmp(a, "--endpoint") == 0 && has_val) {
      endpoint_spec = argv[++i];
    } else if (std::strcmp(a, "--worker-id") == 0 && has_val) {
      wcfg.worker_id = static_cast<std::uint64_t>(
          require_integer("--worker-id", argv[++i], 0, 1'000'000));
    } else if (std::strcmp(a, "--mode") == 0 && has_val) {
      opt.mode = wcfg.mode = argv[++i];
    } else if (std::strcmp(a, "--workers") == 0 && has_val) {
      opt.workers = require_unsigned("--workers", argv[++i], 1, 256);
    } else if (std::strcmp(a, "--shards") == 0 && has_val) {
      opt.shards = static_cast<std::size_t>(
          require_integer("--shards", argv[++i], 1, 1'000'000));
    } else if (std::strcmp(a, "--samples") == 0 && has_val) {
      opt.samples = wcfg.samples = static_cast<int>(
          require_integer("--samples", argv[++i], 1, 100'000'000));
    } else if (std::strcmp(a, "--seed") == 0 && has_val) {
      opt.seed = wcfg.seed = static_cast<std::uint64_t>(
          require_integer("--seed", argv[++i], 0, 1'000'000'000));
    } else if (std::strcmp(a, "--design") == 0 && has_val) {
      opt.bundle.design = wcfg.bundle.design = argv[++i];
    } else if (std::strcmp(a, "--size") == 0 && has_val) {
      opt.bundle.size = wcfg.bundle.size = static_cast<int>(
          require_integer("--size", argv[++i], 1, 1'000'000));
    } else if (std::strcmp(a, "--design-seed") == 0 && has_val) {
      opt.bundle.seed = wcfg.bundle.seed = static_cast<std::uint64_t>(
          require_integer("--design-seed", argv[++i], 0, 1'000'000'000));
    } else if (std::strcmp(a, "--workdir") == 0 && has_val) {
      opt.workdir = argv[++i];
    } else if (std::strcmp(a, "--worker-threads") == 0 ||
               std::strcmp(a, "--threads") == 0) {
      if (!has_val) return usage(argv[0]);
      opt.worker_threads = wcfg.threads =
          require_unsigned(a, argv[++i], 1, 1024);
    } else if (std::strcmp(a, "--retries") == 0 && has_val) {
      opt.retry.max_retries = static_cast<int>(
          require_integer("--retries", argv[++i], 0, 100));
    } else if (std::strcmp(a, "--deadline-s") == 0 && has_val) {
      opt.shard_deadline_s =
          require_real("--deadline-s", argv[++i], 0.01, 86400.0);
    } else if (std::strcmp(a, "--heartbeat-ms") == 0 && has_val) {
      opt.heartbeat_ms = wcfg.heartbeat_ms = static_cast<int>(
          require_integer("--heartbeat-ms", argv[++i], 1, 60'000));
    } else if (std::strcmp(a, "--heartbeat-timeout-s") == 0 && has_val) {
      opt.heartbeat_timeout_s =
          require_real("--heartbeat-timeout-s", argv[++i], 0.01, 86400.0);
    } else if (std::strcmp(a, "--verbose") == 0) {
      opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (worker_mode) {
    if (endpoint_spec.empty()) {
      throw UsageError("nsdc_dist --worker: --endpoint required");
    }
    wcfg.endpoint = net::Endpoint::parse(endpoint_spec);
    return dist::run_worker(wcfg);
  }

  if (opt.workdir.empty()) opt.workdir = default_workdir();
  opt.worker_binary = self_exe_path(argv[0]);
  std::printf("nsdc_dist: mode=%s workers=%u shards=%zu samples=%d "
              "design=%s/%d workdir=%s\n",
              opt.mode.c_str(), opt.workers, opt.shards, opt.samples,
              opt.bundle.design.c_str(), opt.bundle.size,
              opt.workdir.c_str());
  std::fflush(stdout);

  const dist::DistResult res = dist::run_coordinator(opt);

  for (const auto& st : res.shards) {
    std::printf("nsdc_dist: shard %llu [%llu,%llu) %s attempts=%d%s%s\n",
                static_cast<unsigned long long>(st.id),
                static_cast<unsigned long long>(st.lo),
                static_cast<unsigned long long>(st.hi),
                dist::shard_state_name(st.state), st.attempts,
                st.detail.empty() ? "" : " detail=",
                st.detail.c_str());
  }
  std::printf("nsdc_dist: spawned=%llu lost=%llu spawn_failures=%llu "
              "retries=%llu runtime=%.3fs\n",
              static_cast<unsigned long long>(res.workers_spawned),
              static_cast<unsigned long long>(res.workers_lost),
              static_cast<unsigned long long>(res.spawn_failures),
              static_cast<unsigned long long>(res.shard_retries),
              res.runtime_seconds);
  if (opt.mode == "mc") {
    std::printf("nsdc_dist: circuit mu=%.6e sigma=%.6e gamma=%.6e "
                "kappa=%.6e samples_done=%llu\n",
                res.mc.circuit_moments.mu, res.mc.circuit_moments.sigma,
                res.mc.circuit_moments.gamma, res.mc.circuit_moments.kappa,
                static_cast<unsigned long long>(res.mc.samples_done));
  } else {
    std::printf("nsdc_dist: max_arrival=%.6e critical_net=%d edge=%d "
                "pos=%zu\n",
                res.max_arrival, res.critical_net, res.critical_edge,
                res.po_nets.size());
  }
  if (!res.complete) {
    std::printf("nsdc_dist: PARTIAL result (see per-shard detail above); "
                "exit %d\n", kExitPartial);
    return kExitPartial;
  }
  std::printf("nsdc_dist: complete\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return tool_main(argc, argv);
  } catch (...) {
    return handle_tool_exception("nsdc_dist");
  }
}
