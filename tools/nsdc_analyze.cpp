// nsdc_analyze: multi-pass static timing-graph analysis — certified
// interval delay bounds, charlib domain-coverage audit, SCC structural
// verification, and the optional cross-engine consistency gate — run
// WITHOUT sampling (the gate being the deliberate exception).
//
// Usage: nsdc_analyze (--bench F | --verilog F | --iscas NAME | --random N)
//                     [--spef F | --gen-spef]
//                     [--charlib F | --synthetic-charlib]
//                     [--json] [--threads N] [--zmax Z] [--epsilon E]
//                     [--verify] [--mc-samples N] [--seed S]
//                     [--disable PASS]... [--list-passes]
//
//   --bench F           load an ISCAS-style .bench netlist
//   --verilog F         load a structural Verilog netlist
//   --iscas NAME        generate the ISCAS85-like synthetic design (C432...)
//   --random N          generate a seeded random mapped design of ~N cells
//   --spef F            load SPEF-lite parasitics
//   --gen-spef          generate seeded parasitics for the netlist instead
//   --charlib F         load a characterized library
//   --synthetic-charlib use the closed-form synthetic library (no file)
//   --json              machine-readable report on stdout (deterministic)
//   --threads N         worker lanes (reports are identical at any count)
//   --zmax Z            certificate level: bounds hold for |z| <= Z (def 6)
//   --epsilon E         near-boundary band of the domain audit (def 0.05)
//   --verify            run the cross-engine consistency gate (3 engines)
//   --mc-samples N      Monte-Carlo depth of the gate (default 2000;
//                       --verify-samples is an accepted alias)
//   --seed S            Monte-Carlo seed of the gate (default 777)
//   --disable P         skip pass id P (repeatable)
//   --list-passes       print the registered passes and exit
//
// Exit status: 0 clean/info, 1 warnings, 2 errors, 3 usage, invalid
// argument value, or load failure; typed failures map to the shared
// robustness codes (util/errors.hpp): 10 cancelled, 11 unrecoverable parse
// error, 12 I/O error, 13 internal error.
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "liberty/synthlib.hpp"
#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "netlist/verilogio.hpp"
#include "sta/annotate.hpp"
#include "util/argparse.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"
#include "util/threading.hpp"

using namespace nsdc;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--bench F | --verilog F | --iscas NAME | --random N)\n"
      "          [--spef F | --gen-spef] [--charlib F | --synthetic-charlib]\n"
      "          [--json] [--threads N] [--zmax Z] [--epsilon E]\n"
      "          [--verify] [--mc-samples N] [--seed S]\n"
      "          [--disable PASS]... [--list-passes]\n",
      argv0);
  return 3;
}

int list_passes() {
  for (const auto& pass : AnalysisRegistry::global().passes()) {
    std::printf("%-26s %s\n", pass.id.c_str(), pass.description.c_str());
  }
  return 0;
}

int tool_main(int argc, char** argv) {
  std::string bench_path, verilog_path, iscas_name, spef_path, charlib_path;
  int random_cells = 0;
  bool gen_spef = false, json = false, synthetic = false;
  AnalysisOptions options;

  for (int i = 1; i < argc; ++i) {
    auto arg_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* a = argv[i];
    const char* v = nullptr;
    if (std::strcmp(a, "--list-passes") == 0) return list_passes();
    if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--gen-spef") == 0) {
      gen_spef = true;
    } else if (std::strcmp(a, "--synthetic-charlib") == 0) {
      synthetic = true;
    } else if (std::strcmp(a, "--verify") == 0) {
      options.verify_engines = true;
    } else if (std::strcmp(a, "--bench") == 0 && (v = arg_value())) {
      bench_path = v;
    } else if (std::strcmp(a, "--verilog") == 0 && (v = arg_value())) {
      verilog_path = v;
    } else if (std::strcmp(a, "--iscas") == 0 && (v = arg_value())) {
      iscas_name = v;
    } else if (std::strcmp(a, "--random") == 0 && (v = arg_value())) {
      random_cells =
          static_cast<int>(require_integer("--random", v, 1, 10'000'000));
    } else if (std::strcmp(a, "--spef") == 0 && (v = arg_value())) {
      spef_path = v;
    } else if (std::strcmp(a, "--charlib") == 0 && (v = arg_value())) {
      charlib_path = v;
    } else if (std::strcmp(a, "--threads") == 0 && (v = arg_value())) {
      options.exec.threads = require_unsigned("--threads", v, 1, 1024);
      set_default_threads(options.exec.threads);
    } else if (std::strcmp(a, "--zmax") == 0 && (v = arg_value())) {
      options.z_max = require_real("--zmax", v, 1e-6, 100.0);
    } else if (std::strcmp(a, "--epsilon") == 0 && (v = arg_value())) {
      options.domain_epsilon = require_real("--epsilon", v, 0.0, 10.0);
    } else if ((std::strcmp(a, "--mc-samples") == 0 ||
                std::strcmp(a, "--verify-samples") == 0) &&
               (v = arg_value())) {
      options.verify_samples =
          static_cast<int>(require_integer(a, v, 1, 100'000'000));
    } else if (std::strcmp(a, "--seed") == 0 && (v = arg_value())) {
      options.verify_seed = static_cast<std::uint64_t>(require_integer(
          "--seed", v, 0, std::numeric_limits<long long>::max()));
    } else if (std::strcmp(a, "--disable") == 0 && (v = arg_value())) {
      options.disabled_passes.push_back(v);
    } else {
      return usage(argv[0]);
    }
  }
  const int sources = (bench_path.empty() ? 0 : 1) +
                      (verilog_path.empty() ? 0 : 1) +
                      (iscas_name.empty() ? 0 : 1) + (random_cells > 0 ? 1 : 0);
  if (sources != 1) return usage(argv[0]);
  if (!charlib_path.empty() && synthetic) return usage(argv[0]);
  if (options.z_max <= 0.0) return usage(argv[0]);
  set_log_level(LogLevel::kWarn);

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  std::vector<Diagnostic> parse_diags;

  std::optional<GateNetlist> nl;
  try {
    if (!bench_path.empty()) {
      nl = load_bench(bench_path, cells, &parse_diags);
    } else if (!verilog_path.empty()) {
      nl = load_verilog(verilog_path, cells, &parse_diags);
    } else if (!iscas_name.empty()) {
      nl = generate_iscas_like(iscas_name, cells);
      finalize_design(*nl, cells, tech);
    } else {
      RandomNetlistSpec spec;
      spec.name = "random" + std::to_string(random_cells);
      spec.target_cells = random_cells;
      nl = generate_random_mapped(spec, cells);
      finalize_design(*nl, cells, tech);
    }
  } catch (const Error&) {
    throw;  // typed: the top-level handler maps it to its exit code
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nsdc_analyze: cannot load design: %s\n", e.what());
    return 3;
  }

  std::optional<ParasiticDb> spef;
  if (!spef_path.empty()) {
    std::FILE* f = std::fopen(spef_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "nsdc_analyze: cannot open %s\n",
                   spef_path.c_str());
      return 3;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
    spef = ParasiticDb::from_spef(text, &parse_diags);
  } else if (gen_spef) {
    spef = generate_parasitics(*nl, tech);
  }

  std::optional<CharLib> charlib;
  std::optional<NSigmaCellModel> cell_model;
  std::optional<NSigmaWireModel> wire_model;
  if (synthetic) {
    charlib = make_synthetic_charlib();
  } else if (!charlib_path.empty()) {
    charlib = CharLib::load(charlib_path);
    if (!charlib) {
      std::fprintf(stderr, "nsdc_analyze: cannot load charlib %s\n",
                   charlib_path.c_str());
      return 3;
    }
  }
  if (charlib) {
    try {
      cell_model = NSigmaCellModel::fit(*charlib);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nsdc_analyze: charlib cell-model fit failed: %s\n",
                   e.what());
      // Model passes skip themselves; the structural pass still runs.
    }
    try {
      wire_model = NSigmaWireModel::fit(*charlib, cells);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "nsdc_analyze: charlib wire-model fit failed: %s\n",
                   e.what());
    }
  }

  AnalysisInput input;
  input.netlist = &*nl;
  if (spef) input.parasitics = &*spef;
  if (charlib) {
    input.charlib = &*charlib;
    input.tech = &charlib->tech();
  }
  if (cell_model) input.cell_model = &*cell_model;
  if (wire_model) input.wire_model = &*wire_model;
  if (input.tech == nullptr) input.tech = &tech;

  AnalysisReport report = run_analysis(input, options);
  report.merge(std::move(parse_diags));

  if (json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.to_text().c_str(), stdout);
  }
  return report.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return tool_main(argc, argv);
  } catch (...) {
    return handle_tool_exception("nsdc_analyze");
  }
}
