#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every source file in src/ and
# tools/ — src/analysis and src/lint included via the find below — using the
# compile database of the default build directory. WarningsAsErrors is '*' in
# the profile, so any new warning fails the script.
#
# Un-gated: a missing clang-tidy is a hard failure (exit 4), so the check can
# never silently rot out of a pipeline. Environments that genuinely lack the
# tool (e.g. the gcc-only CI container) must opt out explicitly:
#   NSDC_SKIP_CLANG_TIDY=1 tools/run_clang_tidy.sh
# Usage: tools/run_clang_tidy.sh [clang-tidy args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [[ "${NSDC_SKIP_CLANG_TIDY:-0}" == "1" ]]; then
    echo "run_clang_tidy: clang-tidy not found; skipped (NSDC_SKIP_CLANG_TIDY=1)." >&2
    exit 0
  fi
  echo "run_clang_tidy: clang-tidy not found on PATH." >&2
  echo "run_clang_tidy: install it, or set NSDC_SKIP_CLANG_TIDY=1 to opt out." >&2
  exit 4
fi

if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
clang-tidy -p build --quiet "$@" "${FILES[@]}"
echo "clang-tidy clean (${#FILES[@]} files)."
