#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every source file in src/ and
# tools/ using the compile database of the default build directory.
#
# Gated: environments without clang-tidy (e.g. the gcc-only CI container)
# skip with exit 0 so the script can sit in a pipeline unconditionally.
# Usage: tools/run_clang_tidy.sh [clang-tidy args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping." >&2
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
clang-tidy -p build --quiet "$@" "${FILES[@]}"
echo "clang-tidy clean (${#FILES[@]} files)."
