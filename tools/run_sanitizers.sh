#!/usr/bin/env bash
# Builds the concurrency/numeric test subset under each requested sanitizer
# and runs it. The parallel STA engine and the Monte-Carlo loops are the
# intentionally-concurrent code (tsan); the parsers, lint rules, and numeric
# kernels are what asan/ubsan sweep.
#
# Usage: tools/run_sanitizers.sh [tsan|asan|ubsan ...] [-R regex]
#   With no sanitizer arguments all three run in sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

REGEX="Threading|ThreadPool|Sta|NetMc|Netlist|GoldenSta|Statistical|Lint|Spef|Bench|Incremental|Mutator|TimingSizer|Fault|CancellationToken|Moments|Ssta"
SANS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    tsan|asan|ubsan) SANS+=("$1"); shift ;;
    -R) REGEX="$2"; shift 2 ;;
    *) echo "usage: $0 [tsan|asan|ubsan ...] [-R regex]" >&2; exit 2 ;;
  esac
done
[[ ${#SANS[@]} -gt 0 ]] || SANS=(tsan asan ubsan)

TARGETS=(test_util test_threading test_netlist test_sta test_netmc
         test_statprop test_golden_sta test_lint test_incremental
         test_spef test_benchio test_faultinject test_moments
         test_ssta_analytic)

for SAN in "${SANS[@]}"; do
  echo "=== ${SAN} ==="
  cmake --preset "${SAN}"
  cmake --build --preset "${SAN}" -j"$(nproc)" --target "${TARGETS[@]}"
  case "${SAN}" in
    tsan)  env TSAN_OPTIONS="halt_on_error=1" \
             ctest --test-dir "build-${SAN}" -R "$REGEX" \
             --output-on-failure -j"$(nproc)" ;;
    asan)  env ASAN_OPTIONS="halt_on_error=1" \
             ctest --test-dir "build-${SAN}" -R "$REGEX" \
             --output-on-failure -j"$(nproc)" ;;
    ubsan) env UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
             ctest --test-dir "build-${SAN}" -R "$REGEX" \
             --output-on-failure -j"$(nproc)" ;;
  esac
  echo "${SAN} run clean."
done
