#!/usr/bin/env bash
# Builds the concurrency/numeric test subset under each requested sanitizer
# and runs it. The parallel STA engine and the Monte-Carlo loops are the
# intentionally-concurrent code (tsan); the parsers, lint rules, and numeric
# kernels are what asan/ubsan sweep. The static-analysis suite (interval
# propagation, verify-engines gate) runs as a second pass via its ctest
# label so new analysis tests are picked up without touching the regex.
#
# Usage: tools/run_sanitizers.sh [tsan|asan|ubsan ...] [-R regex]
#   With no sanitizer arguments all three run in sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

REGEX="Threading|ThreadPool|Sta|NetMc|Netlist|GoldenSta|Statistical|Lint|Spef|Bench|Incremental|Mutator|TimingSizer|Fault|CancellationToken|Moments|Ssta|FlatGraph|Serve|Wire|Argparse|CliValidation|Dist|RetryPolicy"
SANS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    tsan|asan|ubsan) SANS+=("$1"); shift ;;
    -R) REGEX="$2"; shift 2 ;;
    *) echo "usage: $0 [tsan|asan|ubsan ...] [-R regex]" >&2; exit 2 ;;
  esac
done
[[ ${#SANS[@]} -gt 0 ]] || SANS=(tsan asan ubsan)

TARGETS=(test_util test_threading test_netlist test_sta test_netmc
         test_statprop test_golden_sta test_lint test_incremental
         test_spef test_benchio test_faultinject test_moments
         test_ssta_analytic test_analysis test_flatgraph test_serve
         test_dist)

for SAN in "${SANS[@]}"; do
  echo "=== ${SAN} ==="
  cmake --preset "${SAN}"
  cmake --build --preset "${SAN}" -j"$(nproc)" --target "${TARGETS[@]}"
  case "${SAN}" in
    tsan)  SAN_ENV=(TSAN_OPTIONS="halt_on_error=1") ;;
    asan)  SAN_ENV=(ASAN_OPTIONS="halt_on_error=1") ;;
    ubsan) SAN_ENV=(UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1") ;;
  esac
  env "${SAN_ENV[@]}" ctest --test-dir "build-${SAN}" -R "$REGEX" \
    --output-on-failure -j"$(nproc)"
  env "${SAN_ENV[@]}" ctest --test-dir "build-${SAN}" -L analysis \
    --output-on-failure -j"$(nproc)"
  echo "${SAN} run clean."
done
