#!/usr/bin/env bash
# Compatibility wrapper: the TSAN gate now lives in run_sanitizers.sh,
# which also covers asan and ubsan. Usage: tools/run_tsan.sh [-R regex]
set -euo pipefail
exec "$(dirname "$0")/run_sanitizers.sh" tsan "$@"
