#!/usr/bin/env bash
# Builds the threading/STA test subset under ThreadSanitizer and runs it.
# The parallel STA engine and the Monte-Carlo loops are the only
# intentionally-concurrent code; this is the gate any change to them must
# pass. Usage: tools/run_tsan.sh [extra ctest -R regex]
set -euo pipefail
cd "$(dirname "$0")/.."

REGEX="${1:-Threading|ThreadPool|Sta|Netlist|GoldenSta|Statistical}"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target \
  test_util test_threading test_netlist test_sta test_statprop test_golden_sta

TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan -R "$REGEX" \
  --output-on-failure -j"$(nproc)"
echo "TSAN run clean."
