// nsdc_serve: the timing-as-a-service daemon. Loads (or generates) a
// design, characterizes/fits the N-sigma models ONCE, then serves timing
// queries over a length-prefixed binary protocol (DESIGN.md §13):
// path/arrival and critical-path queries against the cached baseline STA,
// analytic-SSTA arrival moments, lint runs, Monte-Carlo runs with
// per-request sample budgets, and stateful edit sessions that stream
// netlist edits through IncrementalSta.
//
// Usage: nsdc_serve [--endpoint unix:PATH|tcp:PORT] [--cells N]
//                   [--threads N] [--max-mc-samples N] [--max-sessions N]
//   --endpoint E        where to listen. unix:PATH binds a unix-domain
//                       socket; tcp:PORT binds loopback (PORT 0 picks an
//                       ephemeral port, printed in the banner). Default
//                       tcp:0.
//   --cells N           target cell count of the generated design.
//   --threads N         worker lanes for request batches and every engine.
//   --max-mc-samples N  per-request Monte-Carlo sample budget cap.
//   --max-sessions N    concurrent edit-session cap.
//
// The daemon runs until a client sends a kShutdown request or the process
// receives SIGTERM/SIGINT — either way shutdown is graceful: new
// connections are refused, every request already received is executed,
// responses are flushed, and the process exits 0. Exit codes match the
// other tools: 0 success, 2 usage, 3 invalid argument value, 11 parse
// error, 12 I/O error (e.g. the endpoint cannot be bound), 13 internal
// error.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "liberty/charlib.hpp"
#include "liberty/synthlib.hpp"
#include "net/socket.hpp"
#include "netlist/designgen.hpp"
#include "serve/daemon.hpp"
#include "serve/service.hpp"
#include "sta/annotate.hpp"
#include "sta/timer.hpp"
#include "util/argparse.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"
#include "util/threading.hpp"

using namespace nsdc;

namespace {

/// Set (only) by the SIGTERM/SIGINT handler; the daemon polls it once per
/// pass and drains gracefully. An atomic store is the whole handler — the
/// async-signal-safe minimum.
std::atomic<bool> g_graceful{false};

extern "C" void on_terminate_signal(int) {
  g_graceful.store(true, std::memory_order_release);
}

int tool_main(int argc, char** argv) {
  std::string endpoint_spec = "tcp:0";
  int target_cells = 120;
  bool synthetic = false;
  serve::ServiceOptions sopt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--endpoint") == 0 && i + 1 < argc) {
      endpoint_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--synthetic") == 0) {
      synthetic = true;
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      target_cells = static_cast<int>(
          require_integer("--cells", argv[++i], 1, 10'000'000));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      set_default_threads(require_unsigned("--threads", argv[++i], 1, 1024));
    } else if (std::strcmp(argv[i], "--max-mc-samples") == 0 && i + 1 < argc) {
      sopt.max_mc_samples = static_cast<std::uint32_t>(
          require_integer("--max-mc-samples", argv[++i], 1, 100'000'000));
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      sopt.max_sessions = static_cast<std::uint32_t>(
          require_integer("--max-sessions", argv[++i], 1, 100'000));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--endpoint unix:PATH|tcp:PORT] [--cells N] "
                   "[--threads N] [--max-mc-samples N] [--max-sessions N] "
                   "[--synthetic]\n",
                   argv[0]);
      return 2;
    }
  }
  const net::Endpoint endpoint = net::Endpoint::parse(endpoint_spec);

  set_log_level(LogLevel::kInfo);
  TechParams tech = TechParams::nominal28();
  CellLibrary cells = CellLibrary::standard();

  CharConfig cfg;
  cfg.grid_samples = 300;
  cfg.wire_samples = 200;
  cfg.slew_grid = {10e-12, 100e-12, 250e-12, 500e-12};
  cfg.load_grid_rel = {1.0, 6.0, 15.0, 30.0};
  std::printf("nsdc_serve: loading charlib...\n");
  // --synthetic: the closed-form library (milliseconds, no cache file) —
  // for tests and deployments that cannot pay a cold characterization.
  CharLib charlib =
      synthetic
          ? make_synthetic_charlib()
          : CharLib::build_or_load("flow_smoke_charlib.txt", tech, cells, cfg);
  NSigmaTimer timer(charlib, cells, tech);

  RandomNetlistSpec spec;
  spec.name = "served";
  spec.target_cells = target_cells;
  spec.num_primary_inputs = 12;
  spec.target_depth = 12;
  GateNetlist nl = generate_random_mapped(spec, cells);
  finalize_design(nl, cells, tech);
  ParasiticDb spef = generate_parasitics(nl, tech);
  std::printf("nsdc_serve: design %s: %zu cells %zu nets depth %d\n",
              nl.name().c_str(), nl.num_cells(), nl.num_nets(), nl.depth());

  serve::ServiceRefs refs;
  refs.netlist = &nl;
  refs.parasitics = &spef;
  refs.cell_library = &cells;
  refs.cell_model = &timer.cell_model();
  refs.wire_model = &timer.wire_model();
  refs.tech = &tech;
  refs.charlib = &charlib;
  serve::Service service(refs, sopt);

  serve::Daemon::Options dopt;
  dopt.drain_stop = &g_graceful;
  serve::Daemon daemon(endpoint, service, dopt);
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);
  if (daemon.endpoint().kind == net::Endpoint::Kind::kTcp) {
    std::printf("nsdc_serve: listening on tcp:%u (%u lanes)\n",
                static_cast<unsigned>(daemon.port()), default_threads());
  } else {
    std::printf("nsdc_serve: listening on %s (%u lanes)\n",
                daemon.endpoint().describe().c_str(), default_threads());
  }
  std::fflush(stdout);

  daemon.run();
  std::printf("nsdc_serve: shut down%s after %llu request(s)\n",
              g_graceful.load(std::memory_order_acquire) ? " (signal drain)"
                                                         : "",
              static_cast<unsigned long long>(daemon.requests_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return tool_main(argc, argv);
  } catch (...) {
    return handle_tool_exception("nsdc_serve");
  }
}
