// End-to-end plumbing check: mini characterization -> model fits -> STA ->
// N-sigma path quantiles vs stage-cascaded MC on a small design.
//
// Usage: flow_smoke [--threads N] [--cells N] [--netmc N]
//                   [--lint | --lint-strict]
//                   [--checkpoint FILE] [--resume]
//                   [--deadline SECONDS] [--sample-budget N]
//   --threads N   worker lanes for every parallel region (characterization
//                 MC, STA, path MC, netlist MC). Defaults to the
//                 NSDC_THREADS env var, then hardware concurrency.
//   --cells N     target cell count of the generated smoke design.
//   --netmc N     after STA, run an N-sample whole-netlist Monte Carlo and
//                 print the worst-PO moments and empirical quantiles.
//   --ssta        run the analytic four-moment SSTA engine on the smoke
//                 design and print the worst-PO moments and N-sigma
//                 quantiles (with --netmc, side by side with the MC run).
//   --lint        run the nsdc_lint rules on the smoke design before timing
//                 and print the report.
//   --lint-strict same, but exit with the lint status when errors are found
//                 (gate mode for CI).
//   --analyze     run the static analysis passes (certified interval
//                 bounds, domain audit, structure checks) plus the
//                 cross-engine consistency gate on the smoke design; exit
//                 with the analysis status when errors are found.
//   --checkpoint FILE  stream completed netlist-MC blocks to FILE; a run
//                 killed mid-flight keeps every finished block on disk.
//   --resume      with --checkpoint: restore finished blocks from FILE and
//                 compute only the remainder (byte-identical to an
//                 uninterrupted run).
//   --deadline SECONDS  cancel the run cooperatively after this wall-clock
//                 budget (exit code 10; with --checkpoint the partial
//                 statistics are recovered and printed first).
//   --sample-budget N  cancel after N Monte-Carlo samples have been drawn.
//
// Exit codes: 0 success, 2 usage (unknown flag), 3 invalid argument value,
// 10 cancelled (deadline/budget), 11 parse error, 12 I/O error, 13 internal
// error; 1 reserved for the lint gate.
#include <cstdio>
#include <cstring>

#include "analysis/analysis.hpp"
#include "baselines/corner_sta.hpp"
#include "baselines/mc_reference.hpp"
#include "liberty/charlib.hpp"
#include "lint/lint.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/netmc.hpp"
#include "sta/ssta_analytic.hpp"
#include "sta/timer.hpp"
#include "util/argparse.hpp"
#include "util/cancel.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"
#include "util/threading.hpp"
#include "util/units.hpp"

using namespace nsdc;

namespace {

/// After a cancelled checkpointed run: rebuild whatever statistics the
/// checkpoint holds and print them, so a deadline kill still reports the
/// completed blocks.
void print_partial_netmc(const std::string& checkpoint_path,
                         const GateNetlist& nl) {
  std::vector<Diagnostic> diags;
  const auto data = load_mc_checkpoint(checkpoint_path, nullptr, &diags);
  for (const auto& d : diags) {
    std::fprintf(stderr, "%s\n", format_diagnostic(d).c_str());
  }
  if (!data || data->blocks.empty()) {
    std::fprintf(stderr, "flow_smoke: no completed blocks to recover\n");
    return;
  }
  const auto part = NetlistMonteCarlo::partial_result(*data);
  std::printf("partial netlist MC: %llu of %llu samples in %zu block(s)\n",
              static_cast<unsigned long long>(part.samples_done),
              static_cast<unsigned long long>(data->header.samples),
              data->blocks.size());
  if (part.worst_po >= 0) {
    std::printf("partial worst PO %s: mu %.1f ps sigma %.2f ps\n",
                nl.net(part.worst_po).name.c_str(),
                to_ps(part.worst_po_moments.mu),
                to_ps(part.worst_po_moments.sigma));
  }
}

int tool_main(int argc, char** argv) {
  int target_cells = 120;
  int netmc_samples = 0;
  bool ssta = false;
  bool lint = false, lint_strict = false, analyze = false;
  std::string checkpoint_path;
  bool resume = false;
  double deadline_s = 0.0;
  long long sample_budget = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      set_default_threads(require_unsigned("--threads", argv[++i], 1, 1024));
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      target_cells = static_cast<int>(
          require_integer("--cells", argv[++i], 1, 10'000'000));
    } else if (std::strcmp(argv[i], "--netmc") == 0 && i + 1 < argc) {
      netmc_samples = static_cast<int>(
          require_integer("--netmc", argv[++i], 1, 100'000'000));
    } else if (std::strcmp(argv[i], "--ssta") == 0) {
      ssta = true;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      deadline_s = require_real("--deadline", argv[++i], 1e-9, 1e9);
    } else if (std::strcmp(argv[i], "--sample-budget") == 0 && i + 1 < argc) {
      sample_budget = require_integer("--sample-budget", argv[++i], 1,
                                      1'000'000'000'000LL);
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--lint-strict") == 0) {
      lint = lint_strict = true;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--cells N] [--netmc N] [--ssta] "
                   "[--lint | --lint-strict] [--analyze] [--checkpoint FILE] "
                   "[--resume] [--deadline S] [--sample-budget N]\n",
                   argv[0]);
      return 2;
    }
  }
  CancellationToken token;
  const bool use_token = deadline_s > 0.0 || sample_budget > 0;
  if (deadline_s > 0.0) token.set_timeout(deadline_s);
  if (sample_budget > 0) {
    token.set_sample_budget(static_cast<std::uint64_t>(sample_budget));
  }
  set_log_level(LogLevel::kInfo);
  std::printf("worker lanes: %u (pool: %u workers + caller)\n",
              default_threads(), global_pool().size());
  TechParams tech = TechParams::nominal28();
  CellLibrary cells = CellLibrary::standard();

  CharConfig cfg;
  cfg.grid_samples = 300;
  cfg.wire_samples = 200;
  cfg.slew_grid = {10e-12, 100e-12, 250e-12, 500e-12};
  cfg.load_grid_rel = {1.0, 6.0, 15.0, 30.0};

  std::printf("building mini charlib...\n");
  CharLib charlib = CharLib::build_or_load("flow_smoke_charlib.txt", tech,
                                           cells, cfg);
  std::printf("charlib: %zu arcs, %zu wire obs\n", charlib.arcs().size(),
              charlib.wire_observations().size());

  NSigmaTimer timer(charlib, cells, tech);
  std::printf("table1 R2 at +3s: %.4f  rmse %.3f ps\n",
              timer.cell_model().table1_fit_stats().r_squared[6],
              to_ps(timer.cell_model().table1_fit_stats().rmse[6]));
  std::printf("fo4 variability: %.3f, Xw(INVx2->NAND2x2)=%.3f\n",
              timer.wire_model().fo4_variability(),
              timer.wire_model().xw("INVx2", "NAND2x2"));

  RandomNetlistSpec spec;
  spec.name = "smoke";
  spec.target_cells = target_cells;
  spec.num_primary_inputs = 12;
  spec.target_depth = 12;
  GateNetlist nl = generate_random_mapped(spec, cells);
  finalize_design(nl, cells, tech);
  std::printf("netlist: %zu cells %zu nets depth %d\n", nl.num_cells(),
              nl.num_nets(), nl.depth());
  ParasiticDb spef = generate_parasitics(nl, tech);

  if (lint) {
    LintInput lin;
    lin.netlist = &nl;
    lin.parasitics = &spef;
    lin.charlib = &charlib;
    lin.cell_model = &timer.cell_model();
    lin.tech = &tech;
    const LintReport lrep = run_lint(lin);
    std::fputs(lrep.to_text().c_str(), stdout);
    if (lint_strict && lrep.count(Severity::kError) > 0) {
      std::fprintf(stderr, "flow_smoke: lint gate failed (%d error(s))\n",
                   lrep.count(Severity::kError));
      return lrep.exit_code();
    }
  }

  if (analyze) {
    AnalysisInput ain;
    ain.netlist = &nl;
    ain.parasitics = &spef;
    ain.charlib = &charlib;
    ain.cell_model = &timer.cell_model();
    ain.wire_model = &timer.wire_model();
    ain.tech = &tech;
    AnalysisOptions aopt;
    aopt.verify_engines = true;
    aopt.verify_samples = 500;  // gate depth: means stabilize fast
    if (use_token) aopt.exec.cancel = &token;
    const AnalysisReport arep = run_analysis(ain, aopt);
    std::fputs(arep.to_text().c_str(), stdout);
    if (arep.count(Severity::kError) > 0) {
      std::fprintf(stderr, "flow_smoke: analysis gate failed (%d error(s))\n",
                   arep.count(Severity::kError));
      return arep.exit_code();
    }
  }

  const auto analysis = timer.analyze(nl, spef);
  std::printf("critical path: %zu stages, mean arrival %.1f ps, model %.4f s\n",
              analysis.critical_path.num_stages(),
              to_ps(analysis.mean_arrival), analysis.runtime_seconds);
  std::printf("N-sigma quantiles (ps):");
  for (double q : analysis.quantiles) std::printf(" %.1f", to_ps(q));
  std::printf("\n");

  CornerSta pt(timer.cell_model());
  const auto ptq = pt.path_quantiles(analysis.critical_path);
  std::printf("corner-STA +3s: %.1f ps\n", to_ps(ptq[6]));

  if (netmc_samples > 0) {
    NetMcOptions nopt;
    nopt.checkpoint_path = checkpoint_path;
    nopt.resume = resume;
    const NetlistMonteCarlo netmc(timer.cell_model(), timer.wire_model(),
                                  tech, nopt);
    McConfig nmc;
    nmc.samples = netmc_samples;
    if (use_token) nmc.exec.cancel = &token;
    NetlistMonteCarlo::Result nr;
    try {
      nr = netmc.run(nl, spef, nmc);
    } catch (const CancelledError& e) {
      std::fprintf(stderr, "flow_smoke: netlist MC cancelled: %s\n",
                   e.what());
      if (!checkpoint_path.empty()) print_partial_netmc(checkpoint_path, nl);
      throw;
    }
    for (const auto& d : nr.diagnostics) {
      std::fprintf(stderr, "%s\n", format_diagnostic(d).c_str());
    }
    std::printf("netlist MC: %d samples over %zu POs in %u shard(s), "
                "runtime %.2fs\n",
                netmc_samples, nr.po_nets.size(), nr.shards,
                nr.runtime_seconds);
    if (nr.blocks_resumed > 0) {
      std::printf("netlist MC: resumed %llu block(s) from %s\n",
                  static_cast<unsigned long long>(nr.blocks_resumed),
                  checkpoint_path.c_str());
    }
    if (nr.total_quarantined > 0) {
      std::printf("netlist MC: quarantined %llu non-finite sample value(s)\n",
                  static_cast<unsigned long long>(nr.total_quarantined));
    }
    if (nr.worst_po >= 0) {
      std::printf("worst PO %s: mu %.1f ps sigma %.2f ps gamma %.2f "
                  "kappa %.2f\n",
                  nl.net(nr.worst_po).name.c_str(),
                  to_ps(nr.worst_po_moments.mu),
                  to_ps(nr.worst_po_moments.sigma), nr.worst_po_moments.gamma,
                  nr.worst_po_moments.kappa);
      std::printf("worst PO quantiles (ps):");
      for (double q : nr.worst_po_quantiles) std::printf(" %.1f", to_ps(q));
      std::printf("\ncircuit max quantiles (ps):");
      for (double q : nr.circuit_quantiles) std::printf(" %.1f", to_ps(q));
      std::printf("\n");
    }
  }

  if (ssta) {
    AnalyticSstaOptions sopt;
    if (use_token) sopt.sta.exec.cancel = &token;
    const AnalyticSsta engine(timer.cell_model(), timer.wire_model(), tech,
                              sopt);
    const auto sr = engine.run(nl, spef);
    std::printf("analytic SSTA: %zu POs, %zu levels, runtime %.4fs\n",
                sr.po_nets.size(), sr.levels, sr.runtime_seconds);
    if (sr.worst_po >= 0) {
      std::printf("SSTA worst PO %s: mu %.1f ps sigma %.2f ps gamma %.2f "
                  "kappa %.2f\n",
                  nl.net(sr.worst_po).name.c_str(),
                  to_ps(sr.worst_po_moments.mu),
                  to_ps(sr.worst_po_moments.sigma), sr.worst_po_moments.gamma,
                  sr.worst_po_moments.kappa);
      std::printf("SSTA worst PO quantiles (ps):");
      for (double q : sr.worst_po_quantiles) std::printf(" %.1f", to_ps(q));
      std::printf("\nSSTA circuit max quantiles (ps):");
      for (double q : sr.circuit_quantiles) std::printf(" %.1f", to_ps(q));
      std::printf("\n");
    }
  }

  PathMcConfig mcc;
  mcc.samples = 250;
  if (use_token) mcc.exec.cancel = &token;
  PathMonteCarlo mc(tech);
  const auto mcr = mc.run(analysis.critical_path, mcc);
  std::printf("MC: n=%zu fail=%d quarantined=%llu, runtime %.1fs\n",
              mcr.samples.size(), mcr.failures,
              static_cast<unsigned long long>(mcr.quarantined),
              mcr.runtime_seconds);
  std::printf("MC quantiles (ps):");
  for (double q : mcr.quantiles) std::printf(" %.1f", to_ps(q));
  std::printf("\n");
  // Per-stage diagnosis: model vs MC cell quantiles at -2s/0/+2s.
  PathDelayCalculator calc(timer.cell_model(), timer.wire_model());
  const auto stages = calc.breakdown(analysis.critical_path);
  std::printf("stage  cell model(-2/0/+2)   cell MC(-2/0/+2)   wireM(0)  wireMC(0) slewin load cell\n");
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& st = analysis.critical_path.stages[s];
    std::printf(
        "%2zu  %7.1f %7.1f %7.1f  %7.1f %7.1f %7.1f  %7.1f %7.1f  %5.0f %5.2f %s\n",
        s, to_ps(stages[s].cell[1]), to_ps(stages[s].cell[3]),
        to_ps(stages[s].cell[5]), to_ps(mcr.stage_cell_quantiles[s][1]),
        to_ps(mcr.stage_cell_quantiles[s][3]),
        to_ps(mcr.stage_cell_quantiles[s][5]), to_ps(stages[s].wire[3]),
        to_ps(mcr.stage_wire_quantiles[s][3]), to_ps(st.input_slew),
        to_ff(st.output_load), st.cell->name().c_str());
  }

  const double e3p = 100.0 * (analysis.quantiles[6] - mcr.quantiles[6]) /
                     mcr.quantiles[6];
  const double e3m = 100.0 * (analysis.quantiles[0] - mcr.quantiles[0]) /
                     mcr.quantiles[0];
  const double ept = 100.0 * (ptq[6] - mcr.quantiles[6]) / mcr.quantiles[6];
  std::printf("errors vs MC: ours +3s %.1f%%, -3s %.1f%%; PT +3s %.1f%%\n",
              e3p, e3m, ept);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return tool_main(argc, argv);
  } catch (...) {
    return handle_tool_exception("flow_smoke");
  }
}
