#pragma once
// Shared helper for the examples: obtain a characterized library quickly.
// Reuses the bench cache when present; otherwise builds a reduced-grid
// characterization so examples stay interactive.

#include <fstream>

#include "liberty/charlib.hpp"
#include "pdk/cells.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nsdc::examples {

inline CharLib default_charlib(const TechParams& tech,
                               const CellLibrary& cells) {
  // Prefer the full bench-suite cache if it exists and is valid.
  {
    std::ifstream probe("nsdc_charlib_cache.txt");
    if (probe.good()) {
      if (auto lib = CharLib::load("nsdc_charlib_cache.txt");
          lib && !lib->arcs().empty()) {
        return *std::move(lib);
      }
    }
  }
  CharConfig cfg;
  cfg.grid_samples = 250;
  cfg.wire_samples = 200;
  cfg.slew_grid = {10e-12, 120e-12, 300e-12, 500e-12};
  cfg.load_grid_rel = {1.0, 6.0, 15.0, 30.0};
  return CharLib::build_or_load("example_charlib.txt", tech, cells, cfg);
}

}  // namespace nsdc::examples
