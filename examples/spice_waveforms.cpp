// Transistor-level playground: simulate one logic stage (INVx2 driving a
// 100 um wire into a NAND2x1) with the built-in SPICE-like engine, measure
// delay and slew, and dump the node waveforms to CSV for plotting.
//
//   ./examples/spice_waveforms            -> stage_waveforms.csv
#include <fstream>
#include <iostream>

#include "liberty/stagesim.hpp"
#include "parasitics/wiregen.hpp"
#include "util/units.hpp"

using namespace nsdc;

int main() {
  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();

  // One stage: ramp -> INVx2 -> 100 um wire -> NAND2x1 pin A.
  const WireGenerator gen(tech);
  const RcTree wire = gen.line(100.0, 8, "Z");
  StageConfig sc;
  sc.driver = &cells.by_name("INVx2");
  sc.driver_pin = 0;
  sc.in_rising = true;
  sc.input_slew = 40e-12;
  sc.wire = &wire;
  StageReceiver rcv;
  rcv.cell = &cells.by_name("NAND2x1");
  rcv.pin = 0;
  sc.receivers.push_back(rcv);

  const StageSimulator sim(tech);

  // Nominal corner first, then one slow sample for contrast.
  const auto nominal = sim.run(sc, GlobalCorner::nominal(), nullptr);
  if (!nominal) {
    std::cerr << "simulation failed\n";
    return 1;
  }
  std::cout << "nominal: cell delay " << format_time(nominal->cell_delay)
            << ", wire delay " << format_time(nominal->wire_delay)
            << ", sink slew " << format_time(nominal->sink_slew) << "\n";

  GlobalCorner slow;
  slow.dvth_n = 0.05;  // +50 mV threshold: a near-3-sigma die
  slow.dvth_p = 0.05;
  slow.mu_n_factor = slow.mu_p_factor = 0.92;
  slow.wire_r_factor = 1.15;
  const auto worst = sim.run(sc, slow, nullptr);
  if (worst) {
    std::cout << "slow die: cell delay " << format_time(worst->cell_delay)
              << " (" << format_fixed(worst->cell_delay / nominal->cell_delay, 2)
              << "x nominal), wire delay " << format_time(worst->wire_delay)
              << "\n";
  }

  // Dump the nominal sink waveform.
  std::ofstream csv("stage_waveforms.csv");
  csv << "time_ps,v_sink\n";
  for (std::size_t i = 0; i < nominal->sink_trace.t.size(); ++i) {
    csv << to_ps(nominal->sink_trace.t[i]) << ','
        << nominal->sink_trace.v[i] << '\n';
  }
  std::cout << "wrote stage_waveforms.csv ("
            << nominal->sink_trace.t.size() << " points)\n";
  return 0;
}
