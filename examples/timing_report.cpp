// Statistical timing report — an STA-tool-style view of one design.
//
// Usage:
//   ./examples/timing_report                 (built-in C1908-like netlist)
//   ./examples/timing_report my_design.bench (any classic or extended
//                                             ISCAS .bench file)
//
// Prints the design summary, the critical path stage by stage (cell arc,
// slew, load, mean cell/wire delay) and the N-sigma quantiles of the path
// delay, plus the PrimeTime-style corner number for contrast.
#include <iostream>

#include "baselines/corner_sta.hpp"
#include "common_example.hpp"
#include "core/pathdelay.hpp"
#include "netlist/benchio.hpp"
#include "netlist/designgen.hpp"
#include "netlist/verilogio.hpp"
#include "sta/annotate.hpp"
#include "sta/sdf.hpp"
#include "sta/timer.hpp"

using namespace nsdc;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = examples::default_charlib(tech, cells);
  const NSigmaTimer timer(charlib, cells, tech);

  GateNetlist netlist = [&] {
    if (argc > 1) return load_bench(argv[1], cells);
    GateNetlist nl = generate_iscas_like("C1908", cells);
    finalize_design(nl, cells, tech);
    return nl;
  }();
  const ParasiticDb spef = generate_parasitics(netlist, tech);

  const auto analysis = timer.analyze(netlist, spef);
  const PathDelayCalculator calc(timer.cell_model(), timer.wire_model());
  const auto breakdown = calc.breakdown(analysis.critical_path);

  std::cout << "\n==== statistical timing report: " << netlist.name()
            << " ====\n"
            << "cells " << netlist.num_cells() << " | nets "
            << netlist.num_nets() << " | depth " << netlist.depth()
            << " | PIs " << netlist.primary_inputs().size() << " | POs "
            << netlist.primary_outputs().size() << "\n\n";

  Table t({"#", "cell", "pin", "edge", "slew (ps)", "load (fF)",
           "cell 0s (ps)", "cell +3s (ps)", "wire 0s (ps)", "X_w"});
  for (std::size_t s = 0; s < breakdown.size(); ++s) {
    const auto& st = analysis.critical_path.stages[s];
    t.add_row({std::to_string(s), st.cell->name(), std::to_string(st.pin),
               st.in_rising ? "R" : "F",
               format_fixed(to_ps(st.input_slew), 1),
               format_fixed(to_ff(st.output_load), 2),
               format_fixed(to_ps(breakdown[s].cell[3]), 1),
               format_fixed(to_ps(breakdown[s].cell[6]), 1),
               format_fixed(to_ps(breakdown[s].wire[3]), 2),
               format_fixed(breakdown[s].xw, 3)});
  }
  t.print(std::cout);

  std::cout << "\npath delay quantiles:\n";
  const char* names[] = {"-3s", "-2s", "-1s", "median", "+1s", "+2s", "+3s"};
  for (int lv = 0; lv < 7; ++lv) {
    std::cout << "  " << names[lv] << ": "
              << format_time(analysis.quantiles[static_cast<std::size_t>(lv)])
              << "\n";
  }
  const CornerSta pt(timer.cell_model());
  std::cout << "\nPrimeTime-style derated corner (+3s): "
            << format_time(pt.path_quantiles(analysis.critical_path)[6])
            << "  <- the pessimism the N-sigma model removes\n";
  std::cout << "model evaluation time: "
            << format_fixed(analysis.runtime_seconds * 1e3, 2) << " ms\n";

  // ---- worst endpoints summary ----
  const auto worst = timer.analyze_paths(netlist, spef, 5);
  std::cout << "\ntop endpoints:\n";
  Table tp({"endpoint", "stages", "median", "+3s"});
  for (const auto& r : worst) {
    tp.add_row({r.path.note, std::to_string(r.path.num_stages()),
                format_time(r.quantiles[3]), format_time(r.quantiles[6])});
  }
  tp.print(std::cout);

  // ---- interchange exports ----
  const std::string base = netlist.name();
  if (save_verilog(netlist, base + ".v") &&
      save_sdf(netlist, spef, timer.cell_model(), timer.wire_model(), tech,
               base + ".sdf")) {
    std::cout << "\nexported " << base << ".v (structural Verilog) and "
              << base << ".sdf (min:typ:max = -3s:median:+3s)\n";
  }
  return 0;
}
