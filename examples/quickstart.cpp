// Quickstart: the smallest end-to-end use of the library.
//
//  1. Characterize a few cells of the synthetic 28 nm PDK by Monte-Carlo
//     transistor simulation (cached to quickstart_charlib.txt).
//  2. Fit the N-sigma cell and wire models.
//  3. Build a small mapped netlist with parasitics and ask the timer for
//     the critical path's sigma-level quantiles.
//
// Build & run:   ./examples/quickstart   (from the build directory)
#include <iostream>

#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/timer.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nsdc;

int main() {
  set_log_level(LogLevel::kInfo);

  // --- 1. the technology and a quick characterization -------------------
  const TechParams tech = TechParams::nominal28();  // 0.6 V near-threshold
  const CellLibrary cells = CellLibrary::standard();

  CharConfig cfg;               // keep the quickstart fast:
  cfg.grid_samples = 250;       //   fewer MC samples per grid point
  cfg.wire_samples = 200;
  cfg.slew_grid = {10e-12, 120e-12, 300e-12, 500e-12};
  cfg.load_grid_rel = {1.0, 6.0, 15.0, 30.0};
  const CharLib charlib =
      CharLib::build_or_load("quickstart_charlib.txt", tech, cells, cfg);

  // --- 2. fit the statistical models ------------------------------------
  const NSigmaTimer timer(charlib, cells, tech);
  std::cout << "\ncharacterized " << charlib.arcs().size() << " arcs; "
            << "FO4 delay variability sigma/mu = "
            << format_fixed(timer.wire_model().fo4_variability(), 3) << "\n";

  // --- 3. a design: random mapped netlist + synthetic parasitics --------
  RandomNetlistSpec spec;
  spec.name = "quickstart";
  spec.target_cells = 200;
  spec.num_primary_inputs = 16;
  spec.target_depth = 14;
  GateNetlist netlist = generate_random_mapped(spec, cells);
  finalize_design(netlist, cells, tech);  // buffering + sizing
  const ParasiticDb spef = generate_parasitics(netlist, tech);

  const auto analysis = timer.analyze(netlist, spef);

  std::cout << "\ndesign: " << netlist.num_cells() << " cells, "
            << netlist.num_nets() << " nets, depth " << netlist.depth()
            << "\ncritical path: " << analysis.critical_path.num_stages()
            << " stages, mean arrival " << format_time(analysis.mean_arrival)
            << "\n\n";

  Table t({"sigma level", "path delay"});
  const char* names[] = {"-3s", "-2s", "-1s", "median", "+1s", "+2s", "+3s"};
  for (int lv = 0; lv < 7; ++lv) {
    t.add_row({names[lv],
               format_time(analysis.quantiles[static_cast<std::size_t>(lv)])});
  }
  t.print(std::cout);

  std::cout << "\nThe +3s entry is the 99.86% timing-signoff number the "
               "paper's N-sigma model is built to predict.\n";
  return 0;
}
