// Library characterization walkthrough — the flow of paper Fig. 5:
// for every cell arc, Monte-Carlo transient simulations over the
// (input slew x output load) grid produce the first four delay moments;
// the N-sigma coefficients and calibration surfaces are then fitted and
// summarized. The result is cached so downstream tools (timer, benches)
// reuse it.
//
// Run with NSDC_QUICK=1 for a reduced grid (minutes instead of ~10 min).
#include <cstdlib>
#include <iostream>

#include "core/nsigma_cell.hpp"
#include "core/nsigma_wire.hpp"
#include "liberty/charlib.hpp"
#include "liberty/libwriter.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nsdc;

int main() {
  set_log_level(LogLevel::kInfo);
  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();

  CharConfig cfg;
  const bool quick = std::getenv("NSDC_QUICK") != nullptr;
  if (quick) {
    cfg.grid_samples = 200;
    cfg.wire_samples = 150;
    cfg.slew_grid = {10e-12, 150e-12, 500e-12};
    cfg.load_grid_rel = {1.0, 10.0, 30.0};
  }
  const std::string cache =
      quick ? "example_charlib_quick.txt" : "nsdc_charlib_cache.txt";
  const CharLib charlib = CharLib::build_or_load(cache, tech, cells, cfg);

  // ---- per-cell summary at the reference condition ----
  Table t({"cell", "arc", "mu (ps)", "sigma (ps)", "sigma/mu", "skew",
           "ex.kurt", "+3s (ps)", "mu+3sigma (ps)"});
  for (const auto& arc : charlib.arcs()) {
    const auto& ref = arc.ref();
    t.add_row({arc.cell, arc.in_rising ? "rise->fall" : "fall->rise",
               format_fixed(to_ps(ref.moments.mu), 2),
               format_fixed(to_ps(ref.moments.sigma), 2),
               format_fixed(ref.moments.variability(), 3),
               format_fixed(ref.moments.gamma, 2),
               format_fixed(ref.moments.kappa, 2),
               format_fixed(to_ps(ref.quantiles[6]), 2),
               format_fixed(to_ps(ref.moments.mu + 3 * ref.moments.sigma), 2)});
  }
  std::cout << "\nReference-condition characterization summary "
               "(note +3s != mu+3sigma — the Gaussian rule fails):\n";
  t.print(std::cout);

  // ---- fitted models ----
  const NSigmaCellModel cell_model = NSigmaCellModel::fit(charlib);
  const NSigmaWireModel wire_model = NSigmaWireModel::fit(charlib, cells);
  std::cout << "\nTable-I fit R^2 at +3s: "
            << format_fixed(cell_model.table1_fit_stats().r_squared[6], 4)
            << "\nwire model: X_w0 = "
            << format_fixed(wire_model.intrinsic_variability(), 4)
            << ", X_FI(INV) = " << format_fixed(wire_model.x_drive("INVx1"), 3)
            << ", X_FO(INV) = " << format_fixed(wire_model.x_load("INVx1"), 3)
            << "\n\nCharacterization cached in " << cache << "\n";

  // ---- LVF-style Liberty export ----
  const std::string lib_path = quick ? "nsdc_28n_quick.lib" : "nsdc_28n.lib";
  if (save_liberty(charlib, cells, "nsdc_28n_0p6v", lib_path)) {
    std::cout << "exported Liberty/LVF-style tables to " << lib_path << "\n";
  }
  return 0;
}
