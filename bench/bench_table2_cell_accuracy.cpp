// Table II reproduction: accuracy of estimating the +/-3-sigma cell delay
// for twelve cells (NOR2/NAND2/AOI21 at x1/x2/x4/x8) under the FO4
// constraint — LSN [12] and Burr [13] fitted per cell on fresh Monte-Carlo
// samples, the N-sigma model evaluated from the shared characterized
// library (Table I coefficients + Eq. 2-3 calibration). Reference = the
// empirical +-3-sigma quantiles of the fresh MC (a different seed from
// characterization).
#include <cmath>

#include "baselines/cellmodels.hpp"
#include "common.hpp"
#include "core/nsigma_cell.hpp"
#include "stats/quantiles.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Table II — +/-3s cell delay accuracy vs Monte Carlo",
               "Errors in % of the MC quantile; FO4 loading, near-threshold "
               "0.6 V. Ours = N-sigma model (library-fitted).");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  // Two independent sample sets: a characterization-sized FIT set for the
  // per-cell LSN/Burr/Gaussian baselines (the paper builds those models
  // from characterization data too) and a large REFERENCE set none of the
  // models ever saw.
  CharConfig fit_cfg;
  fit_cfg.seed = 0xF17'5E7ULL;
  const CellCharacterizer fit_ch(tech, fit_cfg);
  CharConfig verify_cfg;
  verify_cfg.seed = 0x7AB1E2ULL;
  const CellCharacterizer ch(tech, verify_cfg);
  const int fit_samples = scaled_samples(600, 1200);
  const int samples = scaled_samples(3000, 10000);

  const char* names[] = {"NOR2x1",  "NOR2x2",  "NOR2x4",  "NOR2x8",
                         "NAND2x1", "NAND2x2", "NAND2x4", "NAND2x8",
                         "AOI21x1", "AOI21x2", "AOI21x4", "AOI21x8"};

  Table t({"Std cell", "LSN -3s", "LSN +3s", "Burr -3s", "Burr +3s",
           "Gauss -3s", "Gauss +3s", "Ours -3s", "Ours +3s"});

  double sum[8] = {0};
  for (const char* name : names) {
    const CellType& cell = cells.by_name(name);
    // FO4 constraint: load = 4x the cell's own input cap; realistic edge
    // at the reference (first grid) slew.
    const double load = 4.0 * cell.input_cap(tech, 0);
    double errs[8] = {0};
    for (bool rising : {true, false}) {
      const double slew_ref = charlib.arc(name, 0, rising).slews.front();
      const auto shape = ch.calibrate_shape(cell, 0, rising, slew_ref);
      const auto fit_mc = fit_ch.run_condition(
          cell, 0, rising, shape.actual_slew, load, fit_samples, true, &shape);
      const auto mc = ch.run_condition(cell, 0, rising, shape.actual_slew,
                                       load, samples, true, &shape);
      LsnDelayModel lsn;
      BurrDelayModel burr;
      GaussianDelayModel gauss;
      lsn.fit(fit_mc.samples);
      burr.fit(fit_mc.samples);
      gauss.fit(fit_mc.samples);
      const auto q_lsn = lsn.sigma_level_quantiles();
      const auto q_burr = burr.sigma_level_quantiles();
      const auto q_gauss = gauss.sigma_level_quantiles();
      const auto q_ours = model.quantiles(name, 0, rising, shape.actual_slew,
                                          load);
      const double* ref = mc.quantiles.data();
      const double e[8] = {
          std::fabs(pct_err(q_lsn[0], ref[0])), std::fabs(pct_err(q_lsn[6], ref[6])),
          std::fabs(pct_err(q_burr[0], ref[0])), std::fabs(pct_err(q_burr[6], ref[6])),
          std::fabs(pct_err(q_gauss[0], ref[0])), std::fabs(pct_err(q_gauss[6], ref[6])),
          std::fabs(pct_err(q_ours[0], ref[0])), std::fabs(pct_err(q_ours[6], ref[6]))};
      for (int i = 0; i < 8; ++i) errs[i] += 0.5 * e[i];
    }
    std::vector<std::string> row{name};
    for (int i = 0; i < 8; ++i) {
      row.push_back(format_fixed(errs[i], 2));
      sum[i] += errs[i];
    }
    t.add_row(row);
  }
  std::vector<std::string> avg{"Avg."};
  for (double s : sum) avg.push_back(format_fixed(s / 12.0, 2));
  t.add_row(avg);
  t.print(std::cout);
  t.save_csv("table2_cell_accuracy.csv");

  std::cout << "\nPaper shape check (paper averages: LSN 5.5/7.7, Burr "
               "12.4/10.6, Ours 2.0/2.7): the N-sigma model beats both "
               "distribution-fitting baselines at both tails.\n";
  return 0;
}
