// Extension study (paper Sec. III-A: "In the rigorous situation, the
// sigma level can be extended to +-6 sigma to keep the stability and
// avoid timing failure"): evaluate the N-sigma model at +-4/5/6 sigma and
// compare the high-sigma tail against (a) the Gaussian rule and (b) the
// LSN distribution fitted to the same Monte-Carlo samples — the only
// tractable references at probabilities far beyond direct MC reach.
#include "baselines/cellmodels.hpp"
#include "common.hpp"
#include "core/nsigma_cell.hpp"
#include "stats/quantiles.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Extension — +-6 sigma quantile estimates",
               "INVx1 / NAND2x2 / NOR2x4 at the reference condition; "
               "Gaussian and LSN-tail references (direct MC cannot reach "
               "p = 1e-9).");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  CharConfig cfg;
  cfg.seed = 0x51C5ULL;
  const CellCharacterizer ch(tech, cfg);
  const int samples = scaled_samples(2500, 12000);

  Table t({"cell", "n", "Gaussian mu+n*s (ps)", "LSN tail (ps)",
           "N-sigma (ps)", "vs Gauss %", "vs LSN %"});
  for (const char* name : {"INVx1", "NAND2x2", "NOR2x4"}) {
    const CellType& cell = cells.by_name(name);
    const double load = 4.0 * cell.input_cap(tech, 0);
    const double slew = charlib.arc(name, 0, true).slews.front();
    const auto shape = ch.calibrate_shape(cell, 0, true, slew);
    const auto mc =
        ch.run_condition(cell, 0, true, shape.actual_slew, load, samples, true);
    LsnDelayModel lsn;
    lsn.fit(mc.samples);
    for (double n : {3.0, 4.0, 5.0, 6.0}) {
      const double gauss = mc.moments.mu + n * mc.moments.sigma;
      const double lsn_q = lsn.quantile(normal_cdf(n));
      const double ours =
          model.quantile_at(name, 0, true, shape.actual_slew, load, n);
      t.add_row({name, format_fixed(n, 0), format_fixed(to_ps(gauss), 1),
                 format_fixed(to_ps(lsn_q), 1), format_fixed(to_ps(ours), 1),
                 format_fixed(pct_err(ours, gauss), 1),
                 format_fixed(pct_err(ours, lsn_q), 1)});
    }
  }
  t.print(std::cout);
  t.save_csv("ext_sixsigma.csv");

  std::cout << "\nShape check: for the right-skewed near-threshold "
               "distributions every +n estimate must exceed the Gaussian "
               "rule, with the gap widening at higher n; the N-sigma "
               "extrapolation should stay in the same decade as the "
               "LSN-tail reference.\n";
  return 0;
}
