// Fig. 10 reproduction: +/-3-sigma wire delay estimation accuracy over
// five RC interconnect examples with FO1/FO2/FO4/FO8 driver/load
// constraints. The N-sigma wire model T_w(n s) = (1 + n X_w) T_Elmore is
// compared against fresh Monte Carlo, with raw Elmore and D2M as the
// no-variability baselines the paper contrasts.
#include <cmath>

#include "common.hpp"
#include "core/nsigma_wire.hpp"
#include "parasitics/wiregen.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 10 — +/-3s wire delay accuracy (5 RC examples x FO1..FO8)",
               "Errors in % of the MC quantile. Ours = Eq. 9 with fitted "
               "X_w; Elmore/D2M carry no variability (compared at +3s).");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaWireModel model = NSigmaWireModel::fit(charlib, cells);

  CharConfig cfg;
  cfg.seed = 0xF1610ULL;
  const CellCharacterizer ch(tech, cfg);
  const int samples = scaled_samples(1000, 6000);

  // Five seeded random interconnect examples "from the parasitic files".
  const WireGenerator gen(tech);
  std::vector<RcTree> trees;
  Rng rng(0x5EED5ULL);
  trees.push_back(gen.line(60.0, 6, "Z"));
  trees.push_back(gen.line(200.0, 12, "Z"));
  for (int i = 0; i < 3; ++i) {
    Rng tree_rng = rng.fork("fig10tree" + std::to_string(i));
    WireGenConfig wc;
    wc.mean_length_um = 40.0;
    const WireGenerator gen_big(tech, wc);
    trees.push_back(gen_big.generate(tree_rng, {"Z"}));
  }

  Table t({"RC net", "FO", "Elmore (ps)", "MC +3s (ps)", "ours -3s err%",
           "ours +3s err%", "Elmore@+3s err%", "D2M@+3s err%"});
  double sum_m3 = 0.0, sum_p3 = 0.0, sum_elm = 0.0;
  int count = 0;
  for (std::size_t ti = 0; ti < trees.size(); ++ti) {
    for (int fo : {1, 2, 4, 8}) {
      const CellType& cell = cells.by_func(CellFunc::kInv, fo);
      const auto obs = ch.run_wire_observation(cell, cell, trees[ti],
                                               static_cast<int>(ti), samples);
      const double xw = model.xw(cell.name(), cell.name());
      // The loaded-tree Elmore is the observation's reference metric.
      const double elmore = obs.elmore;
      RcTree loaded = trees[ti];
      loaded.add_cap(loaded.sink_node("Z"), cell.input_cap(tech, 0));
      const double d2m = loaded.d2m(loaded.sink_node("Z"));
      const double ours_m3 = (1.0 - 3.0 * xw) * elmore;
      const double ours_p3 = (1.0 + 3.0 * xw) * elmore;
      const double e_m3 = pct_err(ours_m3, obs.quantiles[0]);
      const double e_p3 = pct_err(ours_p3, obs.quantiles[6]);
      const double e_elm = pct_err(elmore, obs.quantiles[6]);
      const double e_d2m = pct_err(d2m, obs.quantiles[6]);
      t.add_row({"net" + std::to_string(ti + 1), "FO" + std::to_string(fo),
                 format_fixed(to_ps(elmore), 2),
                 format_fixed(to_ps(obs.quantiles[6]), 2),
                 format_fixed(e_m3, 2), format_fixed(e_p3, 2),
                 format_fixed(e_elm, 2), format_fixed(e_d2m, 2)});
      sum_m3 += std::fabs(e_m3);
      sum_p3 += std::fabs(e_p3);
      sum_elm += std::fabs(e_elm);
      ++count;
    }
  }
  t.print(std::cout);
  t.save_csv("fig10_wire_accuracy.csv");

  std::cout << "\naverages: ours |-3s| = " << format_fixed(sum_m3 / count, 2)
            << "%, ours |+3s| = " << format_fixed(sum_p3 / count, 2)
            << "%, Elmore@+3s = " << format_fixed(sum_elm / count, 2) << "%\n";
  std::cout << "Paper shape check (paper: -3s 1.61%, +3s 2.39%): the "
               "calibrated model stays in the few-percent band while raw "
               "Elmore misses the +3s tail by ~3x X_w (tens of %).\n";
  return 0;
}
