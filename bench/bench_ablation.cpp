// Ablations of the design choices DESIGN.md calls out:
//  A1 — Table-I cross term: sigma-scaled (ours) vs the paper-literal
//       dimensionless gamma*kappa form;
//  A2 — Eq. 3 cubic calibration of gamma/kappa vs a bilinear-only variant;
//  A3 — wire variability decomposition: intercept + driver + load (ours)
//       vs no-intercept (paper-literal Eq. 7) vs intercept-only;
//  A4 — path MC waveform handoff vs equivalent-ramp stages;
//  A5 — path-based quantile sum (paper Eq. 10) vs block-based Gaussian
//       SSTA (Clark max) at several stage correlations.
#include <cmath>

#include "baselines/mc_reference.hpp"
#include "common.hpp"
#include "core/pathdelay.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/statprop.hpp"
#include "sta/timer.hpp"
#include "stats/regression.hpp"

using namespace nsdc;
using namespace nsdc::bench;

namespace {

// A2 helper: mean |quantile error| over all grid observations when
// gamma/kappa come from a surface with the given basis.
double calib_holdout_error(const CharLib& lib, const NSigmaCellModel& model,
                           bool cubic) {
  double sum = 0.0;
  int count = 0;
  for (const auto& arc : lib.arcs()) {
    CalibrationSurface surf = CalibrationSurface::fit(arc);
    if (!cubic) {
      // Zero out the quadratic/cubic terms, keeping {dS, dC, dSdC}.
      for (int k : {2, 3, 4, 5}) {
        surf.gamma_coef[static_cast<std::size_t>(k)] = 0.0;
        surf.kappa_coef[static_cast<std::size_t>(k)] = 0.0;
      }
      // Refit the linear part so the comparison is fair.
      std::vector<std::vector<double>> rows;
      std::vector<double> yg, yk;
      for (std::size_t i = 0; i < arc.slews.size(); ++i) {
        for (std::size_t j = 0; j < arc.loads.size(); ++j) {
          const double ds = (arc.slews[i] - surf.s_ref) / surf.s_scale;
          const double dc = (arc.loads[j] - surf.c_ref) / surf.c_scale;
          rows.push_back({ds, dc, ds * dc});
          yg.push_back(arc.at(i, j).moments.gamma - surf.ref.gamma);
          yk.push_back(arc.at(i, j).moments.kappa - surf.ref.kappa);
        }
      }
      const auto fg = least_squares(rows, yg, 1e-12).beta;
      const auto fk = least_squares(rows, yk, 1e-12).beta;
      surf.gamma_coef = {fg[0], fg[1], 0, 0, 0, 0, fg[2]};
      surf.kappa_coef = {fk[0], fk[1], 0, 0, 0, 0, fk[2]};
    }
    for (std::size_t i = 0; i < arc.slews.size(); ++i) {
      for (std::size_t j = 0; j < arc.loads.size(); ++j) {
        const Moments m = surf.moments_at(arc.slews[i], arc.loads[j]);
        const auto q = model.table1().quantiles(m);
        const auto& mc = arc.at(i, j).quantiles;
        for (int lv : {0, 6}) {
          const auto l = static_cast<std::size_t>(lv);
          sum += std::fabs(100.0 * (q[l] - mc[l]) / mc[l]);
          ++count;
        }
      }
    }
  }
  return sum / count;
}

// A3 helper: rms relative residual of an X_w regression variant.
double xw_variant_residual(const CharLib& lib, bool with_terms,
                           bool with_intercept) {
  const auto& obs = lib.wire_observations();
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (const auto& o : obs) {
    std::vector<double> row;
    if (with_intercept) row.push_back(1.0);
    if (with_terms) {
      row.push_back(lib.cell_variability(o.driver_cell));
      row.push_back(lib.cell_variability(o.load_cell));
    }
    rows.push_back(std::move(row));
    y.push_back(o.variability());
  }
  const FitResult fit = least_squares(rows, y, 1e-10);
  double ss = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = 0.0;
    for (std::size_t c = 0; c < rows[i].size(); ++c) {
      pred += rows[i][c] * fit.beta[c];
    }
    const double rel = (pred - y[i]) / y[i];
    ss += rel * rel;
  }
  return 100.0 * std::sqrt(ss / static_cast<double>(rows.size()));
}

}  // namespace

int main() {
  print_header("Ablations", "Design-choice sensitivity studies (DESIGN.md #5).");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);

  // ---- A1: cross-term form ----
  {
    std::vector<Moments> ms;
    std::vector<std::array<double, 7>> qs;
    for (const auto& arc : charlib.arcs()) {
      for (const auto& g : arc.grid) {
        ms.push_back(g.moments);
        qs.push_back(g.quantiles);
      }
    }
    Table t({"cross-term form", "R2(-3s)", "R2(+3s)", "rmse(+3s)"});
    for (bool scaled : {true, false}) {
      TableICoefficients::FitStats stats;
      (void)TableICoefficients::fit(ms, qs, scaled, &stats);
      t.add_row({scaled ? "sigma*gamma*kappa (ours)" : "gamma*kappa (paper literal)",
                 format_fixed(stats.r_squared[0], 4),
                 format_fixed(stats.r_squared[6], 4),
                 scaled ? format_fixed(stats.rmse[6], 4) + " (norm.)"
                        : format_fixed(stats.rmse[6] * 1e12, 4) + " ps"});
    }
    std::cout << "A1 — Table-I cross-term form:\n";
    t.print(std::cout);
  }

  // ---- A2: cubic vs bilinear gamma/kappa calibration ----
  {
    const NSigmaCellModel model = NSigmaCellModel::fit(charlib);
    Table t({"gamma/kappa calibration", "avg |+-3s quantile err| %"});
    t.add_row({"cubic (Eq. 3, ours)",
               format_fixed(calib_holdout_error(charlib, model, true), 3)});
    t.add_row({"bilinear only",
               format_fixed(calib_holdout_error(charlib, model, false), 3)});
    std::cout << "\nA2 — operating-condition calibration order:\n";
    t.print(std::cout);
  }

  // ---- A3: wire variability decomposition ----
  {
    Table t({"X_w model", "rms relative residual %"});
    t.add_row({"X_w0 + X_FI*V_d + X_FO*V_l (ours)",
               format_fixed(xw_variant_residual(charlib, true, true), 3)});
    t.add_row({"X_FI*V_d + X_FO*V_l (paper Eq. 7)",
               format_fixed(xw_variant_residual(charlib, true, false), 3)});
    t.add_row({"X_w0 only (no cell awareness)",
               format_fixed(xw_variant_residual(charlib, false, true), 3)});
    std::cout << "\nA3 — wire variability decomposition:\n";
    t.print(std::cout);
  }

  // ---- A4: MC waveform handoff vs equivalent ramps ----
  {
    const NSigmaTimer timer(charlib, cells, tech);
    GateNetlist nl = generate_iscas_like("C1355", cells);
    finalize_design(nl, cells, tech);
    const ParasiticDb spef = generate_parasitics(nl, tech);
    const auto analysis = timer.analyze(nl, spef);

    PathMcConfig mcc;
    mcc.samples = scaled_samples(300, 1500);
    const PathMonteCarlo mc(tech);
    const auto with_waves = mc.run(analysis.critical_path, mcc);

    // Equivalent-ramp variant: strip wave handoff by running each stage
    // with its STA mean slew as an ideal ramp. Implemented by zeroing the
    // sink traces via a path whose stages are simulated independently —
    // here approximated by re-running MC on a copy where every stage's
    // input comes from a ramp (input_wave disabled inside the path MC is
    // equivalent to a 1-stage path per stage).
    double ramp_total_p3 = 0.0;
    double ramp_total_med = 0.0;
    for (const auto& st : analysis.critical_path.stages) {
      PathDescription single;
      single.stages.push_back(st);
      const auto r = mc.run(single, mcc);
      ramp_total_p3 += r.quantiles[6];
      ramp_total_med += r.quantiles[3];
    }
    Table t({"MC variant", "median (ps)", "+3s (ps)"});
    t.add_row({"stage-cascaded waveform handoff (golden)",
               format_fixed(to_ps(with_waves.quantiles[3]), 1),
               format_fixed(to_ps(with_waves.quantiles[6]), 1)});
    t.add_row({"independent ramp-driven stages (quantile sum)",
               format_fixed(to_ps(ramp_total_med), 1),
               format_fixed(to_ps(ramp_total_p3), 1)});
    std::cout << "\nA4 — stage decomposition of the golden MC (C1355 path, "
              << analysis.critical_path.num_stages() << " stages):\n";
    t.print(std::cout);
    std::cout << "Independent stages sum per-stage quantiles, losing the "
                 "slew/corner coupling the cascaded waveform carries.\n";

    // ---- A5: Eq. 10 quantile sum vs block-based Gaussian SSTA ----
    const NSigmaWireModel& wmod = timer.wire_model();
    Table t5({"analysis", "median (ps)", "+3s (ps)"});
    t5.add_row({"path-based N-sigma sum (paper Eq. 10)",
                format_fixed(to_ps(analysis.quantiles[3]), 1),
                format_fixed(to_ps(analysis.quantiles[6]), 1)});
    for (double rho : {0.2, 0.5, 0.8}) {
      StatisticalSta::Config scfg;
      scfg.stage_correlation = rho;
      const auto r = StatisticalSta(timer.cell_model(), wmod, tech, scfg)
                         .run(nl, spef);
      t5.add_row({"block SSTA (Clark max, rho=" + format_fixed(rho, 1) + ")",
                  format_fixed(to_ps(r.worst.mean), 1),
                  format_fixed(to_ps(r.worst.quantile(3.0)), 1)});
    }
    t5.add_row({"golden MC", format_fixed(to_ps(with_waves.quantiles[3]), 1),
                format_fixed(to_ps(with_waves.quantiles[6]), 1)});
    std::cout << "\nA5 — path-based quantile sum vs block-based Gaussian "
                 "SSTA (same design):\n";
    t5.print(std::cout);
    std::cout << "The quantile sum is exact for comonotone stages; Gaussian "
                 "SSTA captures averaging but drops the skew — the MC row "
                 "arbitrates.\n";
  }
  return 0;
}
