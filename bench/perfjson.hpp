#pragma once
// Shared envelope for the *_perf.json records emitted by bench_micro_perf:
// every record opens with the same schema_version plus a host-metadata
// block (hardware lanes, the lane count the default ExecContext resolves
// to, and the resolved scheduling grain), so downstream tooling can key on
// one layout across records, machines, and NSDC_GRAIN settings.

#include <ostream>
#include <string>

#include "util/exec.hpp"
#include "util/threading.hpp"

namespace nsdc::perfjson {

/// Version of the shared record envelope. Bump when the envelope itself
/// (not an individual bench's payload) changes incompatibly.
inline constexpr int kSchemaVersion = 1;

/// Opens a record: `{` + schema_version + bench name + host block. The
/// caller appends its own fields (each prefixed with ",\n  ") and writes
/// the closing "\n}\n" itself.
inline void open_envelope(std::ostream& json, const std::string& bench) {
  const ExecContext exec;
  json << "{\n  \"schema_version\": " << kSchemaVersion << ",\n"
       << "  \"bench\": \"" << bench << "\",\n"
       << "  \"host\": {\"hardware_threads\": " << default_threads()
       << ", \"resolved_threads\": " << exec.resolved_threads()
       << ", \"grain\": " << exec.resolved_grain(1) << "}";
}

}  // namespace nsdc::perfjson
