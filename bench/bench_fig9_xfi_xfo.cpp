// Fig. 9 reproduction: accuracy of the fitted cell-specific wire
// coefficients X_FI / X_FO. The model's predicted X_w (Eq. 7) is compared
// against the Monte-Carlo-measured sigma_w/mu_w for every driver/load
// observation; errors are aggregated per driver cell (X_FI view) and per
// load cell (X_FO view), matching the paper's two panels.
#include <cmath>
#include <map>

#include "common.hpp"
#include "core/nsigma_wire.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 9 — errors of the fitted X_FI / X_FO coefficients",
               "Prediction error of X_w per observation, aggregated by "
               "driver (X_FI) and by load (X_FO).");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaWireModel model = NSigmaWireModel::fit(charlib, cells);

  std::map<std::string, std::pair<double, int>> by_driver, by_load;
  for (const auto& r : model.report()) {
    const double err =
        100.0 * std::fabs(r.predicted_xw - r.measured_xw) / r.measured_xw;
    by_driver[r.driver_cell].first += err;
    by_driver[r.driver_cell].second += 1;
    by_load[r.load_cell].first += err;
    by_load[r.load_cell].second += 1;
  }

  std::cout << "fitted intrinsic wire variability X_w0 = "
            << format_fixed(model.intrinsic_variability(), 4) << "\n";
  std::cout << "sigma_FO4/mu_FO4 (INVx4) = "
            << format_fixed(model.fo4_variability(), 4) << "\n\n";

  Table td({"driver cell", "X_FI (family)", "V_c = s/m", "avg |Xw err| %"});
  double sum_d = 0.0;
  for (const auto& [name, acc] : by_driver) {
    const double avg = acc.first / acc.second;
    sum_d += avg;
    td.add_row({name, format_fixed(model.x_drive(name), 4),
                format_fixed(model.cell_variability(name), 4),
                format_fixed(avg, 2)});
  }
  td.add_row({"Avg.", "-", "-",
              format_fixed(sum_d / static_cast<double>(by_driver.size()), 2)});
  std::cout << "(a) by driver cell:\n";
  td.print(std::cout);
  td.save_csv("fig9_xfi.csv");

  Table tl({"load cell", "X_FO (family)", "V_c = s/m", "avg |Xw err| %"});
  double sum_l = 0.0;
  for (const auto& [name, acc] : by_load) {
    const double avg = acc.first / acc.second;
    sum_l += avg;
    tl.add_row({name, format_fixed(model.x_load(name), 4),
                format_fixed(model.cell_variability(name), 4),
                format_fixed(avg, 2)});
  }
  tl.add_row({"Avg.", "-", "-",
              format_fixed(sum_l / static_cast<double>(by_load.size()), 2)});
  std::cout << "\n(b) by load cell:\n";
  tl.print(std::cout);
  tl.save_csv("fig9_xfo.csv");

  std::cout << "\nPaper shape check: the paper reports ~1.92% (X_FI) and "
               "~3.31% (X_FO) fitting error; the averages above should land "
               "in the same few-percent band.\n";
  return 0;
}
