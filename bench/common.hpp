#pragma once
// Shared infrastructure for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper and
// prints it in a diff-friendly text format. Heavy artifacts (library
// characterization, the ML wire model) are cached in the working
// directory so the suite amortizes their cost.
//
// Environment knobs:
//   NSDC_FULL=1        paper-scale sample counts / full design lists
//   NSDC_SAMPLES_SCALE=<f>  multiply every MC sample count by f
//   NSDC_CACHE_DIR=<d> where to keep charlib/ML caches (default ".")

#include <cstdlib>
#include <iostream>
#include <string>

#include "liberty/charlib.hpp"
#include "pdk/cells.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nsdc::bench {

inline bool full_mode() {
  const char* v = std::getenv("NSDC_FULL");
  return v != nullptr && v[0] == '1';
}

inline double samples_scale() {
  if (const char* v = std::getenv("NSDC_SAMPLES_SCALE")) {
    const double f = std::atof(v);
    if (f > 0.0) return f;
  }
  return 1.0;
}

/// Scales a default sample count by mode and env.
inline int scaled_samples(int base, int full_base = 0) {
  const int n = full_mode() && full_base > 0 ? full_base : base;
  return std::max(16, static_cast<int>(n * samples_scale()));
}

inline std::string cache_dir() {
  if (const char* v = std::getenv("NSDC_CACHE_DIR")) return v;
  return ".";
}

inline std::string charlib_cache_path() {
  return cache_dir() + "/nsdc_charlib_cache.txt";
}

/// The shared production characterization (cached across benches).
inline CharLib shared_charlib(const TechParams& tech, const CellLibrary& lib) {
  set_log_level(LogLevel::kInfo);
  CharConfig cfg;  // defaults: 5x5 grid, 600/400 samples
  if (full_mode()) {
    cfg.grid_samples = 1200;
    cfg.wire_samples = 800;
  }
  CharLib out = CharLib::build_or_load(charlib_cache_path(), tech, lib, cfg);
  set_log_level(LogLevel::kWarn);
  return out;
}

/// Signed relative error in percent, the convention of the paper's tables.
inline double pct_err(double model, double reference) {
  return reference != 0.0 ? 100.0 * (model - reference) / reference : 0.0;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << std::endl;
}

}  // namespace nsdc::bench
