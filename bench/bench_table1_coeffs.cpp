// Table I reproduction: the regression coefficients A_ni / B_nj tying the
// sigma-level quantiles to the moment cross terms, fitted over the whole
// characterized library, with per-level goodness of fit.
#include "common.hpp"
#include "core/nsigma_cell.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Table I — N-sigma quantile model coefficients",
               "T_c(n s) = mu + n*sigma + A/B terms; fitted by OLS over all "
               "characterized (arc x condition) Monte-Carlo observations.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  const char* level_names[] = {"-3s", "-2s", "-1s", "0s", "+1s", "+2s", "+3s"};
  const char* defective[] = {"0.14%",  "2.28%",  "15.87%", "50.00%",
                             "84.13%", "97.72%", "99.86%"};

  Table t({"sigma level", "percent defective", "coef(sg)", "coef(sk)",
           "coef(sgk)", "R^2", "rmse (norm.)"});
  const auto& mask = TableICoefficients::active_terms();
  const auto& stats = model.table1_fit_stats();
  for (int lv = 0; lv < 7; ++lv) {
    const auto l = static_cast<std::size_t>(lv);
    auto coef_str = [&](int term) {
      return mask[l][static_cast<std::size_t>(term)]
                 ? format_fixed(model.table1().coefficient(lv, term), 4)
                 : std::string("-");
    };
    t.add_row({level_names[l], defective[l], coef_str(0), coef_str(1),
               coef_str(2), format_fixed(stats.r_squared[l], 4),
               format_fixed(stats.rmse[l], 4)});
  }
  t.print(std::cout);
  t.save_csv("table1_coeffs.csv");

  std::cout << "\nObservations pooled: " << charlib.arcs().size()
            << " arcs x " << charlib.arcs().front().grid.size()
            << " conditions = "
            << charlib.arcs().size() * charlib.arcs().front().grid.size()
            << "\n";
  std::cout << "Term structure matches the paper: sg acts on -2s..+2s, sk on "
               "+-2s/+-3s, the cross term everywhere (sigma-scaled here; see "
               "DESIGN.md).\n";
  return 0;
}
