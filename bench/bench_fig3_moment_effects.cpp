// Fig. 3 reproduction: how skewness and (excess) kurtosis move the seven
// sigma-level quantiles away from the Gaussian mu + n*sigma positions.
//
// Panel (a): skew-normal family with increasing skewness at unit variance.
// Panel (b): Student-t family with increasing excess kurtosis at zero skew.
// The paper's observations to verify:
//   * skewness moves the inner quantiles (-2s..+2s) more than +-3s;
//   * kurtosis mostly moves the +-2s/+-3s points (fat tails).
#include <cmath>

#include "common.hpp"
#include "stats/distributions.hpp"
#include "stats/quantiles.hpp"
#include "util/rng.hpp"

using namespace nsdc;
using namespace nsdc::bench;

namespace {

// Standardized quantile offsets: q(level) - n, for a zero-mean unit-var
// sample. For a Gaussian every entry is ~0.
std::array<double, 7> offsets(const std::vector<double>& xs) {
  const Moments m = compute_moments(xs);
  auto q = sigma_quantiles(xs);
  std::array<double, 7> out{};
  for (int lv = 0; lv < 7; ++lv) {
    const auto l = static_cast<std::size_t>(lv);
    out[l] = (q[l] - m.mu) / m.sigma - (lv - 3);
  }
  return out;
}

std::vector<double> student_t(Rng& rng, int dof, int n) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double chi2 = 0.0;
    for (int k = 0; k < dof; ++k) {
      const double z = rng.normal();
      chi2 += z * z;
    }
    xs.push_back(rng.normal() / std::sqrt(chi2 / dof));
  }
  return xs;
}

}  // namespace

int main() {
  print_header("Fig. 3 — effect of skewness / kurtosis on sigma-level quantiles",
               "Entries are standardized offsets (q - mu)/sigma - n; Gaussian = 0.");
  const int n = scaled_samples(400000, 2000000);
  Rng rng(0xF163ULL);

  Table ta({"skewness (SN alpha)", "gamma", "d(-3s)", "d(-2s)", "d(-1s)",
            "d(0s)", "d(+1s)", "d(+2s)", "d(+3s)"});
  for (double alpha : {0.0, 1.5, 3.0, 8.0}) {
    SkewNormal sn{0.0, 1.0, alpha};
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) xs.push_back(sn.sample(rng));
    const Moments m = compute_moments(xs);
    const auto off = offsets(xs);
    std::vector<std::string> row{format_fixed(alpha, 1),
                                 format_fixed(m.gamma, 3)};
    for (double d : off) row.push_back(format_fixed(d, 3));
    ta.add_row(row);
  }
  std::cout << "(a) skewness family (skew-normal):\n";
  ta.print(std::cout);
  ta.save_csv("fig3a_skewness.csv");

  Table tb({"t dof", "ex.kurtosis", "d(-3s)", "d(-2s)", "d(-1s)", "d(0s)",
            "d(+1s)", "d(+2s)", "d(+3s)"});
  for (int dof : {0, 12, 7, 5}) {  // 0 => Gaussian reference
    std::vector<double> xs;
    if (dof == 0) {
      xs.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) xs.push_back(rng.normal());
    } else {
      xs = student_t(rng, dof, n);
    }
    const Moments m = compute_moments(xs);
    const auto off = offsets(xs);
    std::vector<std::string> row{dof == 0 ? "inf" : std::to_string(dof),
                                 format_fixed(m.kappa, 3)};
    for (double d : off) row.push_back(format_fixed(d, 3));
    tb.add_row(row);
  }
  std::cout << "\n(b) kurtosis family (Student-t):\n";
  tb.print(std::cout);
  tb.save_csv("fig3b_kurtosis.csv");

  std::cout << "\nPaper shape check: (a) skewness shifts every level toward "
               "the long tail, with the inner levels (-2s..+2s) moving "
               "relative to the Gaussian rule — the sg terms of Table I; "
               "(b) kurtosis leaves the median and +-1s almost untouched "
               "and pushes +-2s/+-3s outward — exactly why Table I gives "
               "sk terms only to the +-2s/+-3s rows.\n";
  return 0;
}
