// Table-III-style circuit-level comparison for the sharded netlist Monte
// Carlo: on each design the golden reference is now the whole-netlist MC
// (every gate and wire drawn per sample), compared against
//   Analytic   — StatisticalSta Clark-max propagation (mean +/- 3 sigma)
//   Path Eq.10 — N-sigma quantiles of the nominal critical path
// with signed +3-sigma errors and runtimes. The netlist MC also reports its
// empirical worst-PO skew/kurtosis, which the Gaussian analytic propagator
// cannot produce.
//
// Default mode runs a small subset; NSDC_FULL=1 runs more designs at
// paper-scale sample counts.
#include "common.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/netmc.hpp"
#include "sta/statprop.hpp"
#include "sta/timer.hpp"

using namespace nsdc;
using namespace nsdc::bench;

namespace {

GateNetlist build_design(const std::string& name, const CellLibrary& cells,
                         const TechParams& tech) {
  GateNetlist nl = [&] {
    if (name == "ADD") return generate_ripple_adder(full_mode() ? 64 : 32, cells);
    if (name == "MUL") {
      return generate_array_multiplier(full_mode() ? 16 : 8, cells);
    }
    return generate_iscas_like(name, cells);
  }();
  finalize_design(nl, cells, tech);
  return nl;
}

}  // namespace

int main() {
  print_header("Netlist Monte Carlo vs analytic SSTA and path Eq. 10",
               "Delays in ps; errors in % vs the netlist-MC +3s quantile; "
               "runtimes in seconds.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaTimer timer(charlib, cells, tech);
  const StatisticalSta ssta(timer.cell_model(), timer.wire_model(), tech);
  const NetlistMonteCarlo netmc(timer.cell_model(), timer.wire_model(), tech);

  std::vector<std::string> designs = {"C432", "ADD", "MUL"};
  if (full_mode()) designs = {"C432", "C499", "C1355", "ADD", "MUL"};

  Table t({"Design", "#Cells", "MC -3s", "MC mu", "MC +3s", "MC skew",
           "SSTA +3s", "Path +3s", "SSTA err%", "Path err%", "t.MC (s)",
           "shards"});

  double sum_ssta = 0.0, sum_path = 0.0;
  int n_rows = 0;
  for (const auto& name : designs) {
    const GateNetlist nl = build_design(name, cells, tech);
    const ParasiticDb spef = generate_parasitics(nl, tech);

    const auto analysis = timer.analyze(nl, spef);
    const auto an = ssta.run(nl, spef);

    McConfig cfg;
    cfg.samples = scaled_samples(1000, 10000);
    cfg.seed = 0x11E7ULL;
    const auto mc = netmc.run(nl, spef, cfg);

    const double mc_p3 = mc.worst_po_quantiles[6];
    const double e_ssta = pct_err(an.worst.quantile(3.0), mc_p3);
    const double e_path = pct_err(analysis.quantiles[6], mc_p3);
    t.add_row({name, std::to_string(nl.num_cells()),
               format_fixed(to_ps(mc.worst_po_quantiles[0]), 0),
               format_fixed(to_ps(mc.worst_po_moments.mu), 0),
               format_fixed(to_ps(mc_p3), 0),
               format_fixed(mc.worst_po_moments.gamma, 2),
               format_fixed(to_ps(an.worst.quantile(3.0)), 0),
               format_fixed(to_ps(analysis.quantiles[6]), 0),
               format_fixed(e_ssta, 1), format_fixed(e_path, 1),
               format_fixed(mc.runtime_seconds, 2),
               std::to_string(mc.shards)});
    sum_ssta += std::abs(e_ssta);
    sum_path += std::abs(e_path);
    ++n_rows;
  }
  const double n = n_rows;
  t.add_row({"Avg.|err|", "-", "-", "-", "-", "-", "-", "-",
             format_fixed(sum_ssta / n, 1), format_fixed(sum_path / n, 1),
             "-", "-"});
  t.print(std::cout);
  t.save_csv("netmc_comparison.csv");

  std::cout << "\nShape check: the analytic SSTA +3s should land within "
               "~10-15% of the netlist-MC quantile (Clark max biases high "
               "on deep reconvergent designs, Gaussian tails bias low), "
               "while the single-path Eq. 10 number overshoots by design: "
               "it cascades per-stage +3s quantiles, i.e. assumes fully "
               "correlated stages, where the ensemble's local half of the "
               "variance averages out along the path.\n";
  return 0;
}
