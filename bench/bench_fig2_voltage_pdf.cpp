// Fig. 2 reproduction: the inverter delay distribution under supply
// voltages 0.5-0.8 V. The paper's qualitative claim: as VDD drops toward
// the near-threshold regime the PDF widens, skews right and grows a heavy
// tail, so the Gaussian mu + n*sigma quantile rule breaks.
#include <vector>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 2 — INV delay PDFs vs supply voltage (25C)",
               "INVx1, FO4 load, 10 ps input ramp; per-voltage Monte Carlo.");

  const CellLibrary cells = CellLibrary::standard();
  const int samples = scaled_samples(4000, 10000);

  Table t({"VDD (V)", "mu (ps)", "sigma (ps)", "sigma/mu", "skewness",
           "ex.kurtosis", "-3s (ps)", "median", "+3s (ps)",
           "(q+3 - mu)/(mu - q-3)"});

  std::vector<std::pair<double, std::vector<double>>> dists;
  for (double vdd : {0.5, 0.6, 0.7, 0.8}) {
    const TechParams tech = TechParams::nominal28().at_voltage(vdd);
    CharConfig cfg;
    cfg.seed = 0xF16'2ULL;
    const CellCharacterizer ch(tech, cfg);
    const CellType& inv = cells.by_name("INVx1");
    const double fo4_load = 4.0 * inv.input_cap(tech, 0);
    const ConditionStats stats =
        ch.run_condition(inv, 0, true, 10e-12, fo4_load, samples, true);
    const auto& m = stats.moments;
    const auto& q = stats.quantiles;
    const double asym = (q[6] - m.mu) / (m.mu - q[0]);
    t.add_row({format_fixed(vdd, 1), format_fixed(to_ps(m.mu), 2),
               format_fixed(to_ps(m.sigma), 2), format_fixed(m.variability(), 3),
               format_fixed(m.gamma, 3), format_fixed(m.kappa, 3),
               format_fixed(to_ps(q[0]), 2), format_fixed(to_ps(q[3]), 2),
               format_fixed(to_ps(q[6]), 2), format_fixed(asym, 2)});
    dists.emplace_back(vdd, stats.samples);
  }
  t.print(std::cout);
  t.save_csv("fig2_voltage_pdf.csv");

  std::cout << "\nDelay histograms (note the growing right tail at low VDD):\n";
  for (const auto& [vdd, samples_v] : dists) {
    std::cout << "\nVDD = " << format_fixed(vdd, 1) << " V\n";
    const Histogram h(samples_v, 24);
    std::cout << h.render(48, 1e-12, "ps");
  }

  std::cout << "\nPaper shape check: skewness and kurtosis increase "
               "monotonically as VDD decreases; at 0.6 V the +3s tail is "
               "substantially farther from the mean than the -3s tail.\n";
  return 0;
}
