// Fig. 8 reproduction: the wire delay distribution of the same RC tree
// with driver/load inverters of strengths 1, 2 and 4. Reports the mean,
// sigma and variability X_w = sigma_w/mu_w per combination so the paper's
// claimed trends can be read off directly.
#include "common.hpp"
#include "parasitics/wiregen.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 8 — wire delay vs driver/load strength",
               "120 um net; INV drivers/loads of strengths 1/2/4; "
               "X_w = sigma_w / mu_w.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const WireGenerator gen(tech);
  const RcTree tree = gen.line(120.0, 10, "Z");
  CharConfig cfg;
  cfg.seed = 0xF168ULL;
  const CellCharacterizer ch(tech, cfg);
  const int samples = scaled_samples(1500, 8000);

  Table t({"driver", "load", "mu_w (ps)", "sigma_w (ps)", "X_w",
           "-3s (ps)", "+3s (ps)"});
  for (int ds : {1, 2, 4}) {
    for (int ls : {1, 2, 4}) {
      const auto obs = ch.run_wire_observation(
          cells.by_func(CellFunc::kInv, ds), cells.by_func(CellFunc::kInv, ls),
          tree, 0, samples);
      t.add_row({"INVx" + std::to_string(ds), "INVx" + std::to_string(ls),
                 format_fixed(to_ps(obs.wire_moments.mu), 2),
                 format_fixed(to_ps(obs.wire_moments.sigma), 3),
                 format_fixed(obs.variability(), 4),
                 format_fixed(to_ps(obs.quantiles[0]), 2),
                 format_fixed(to_ps(obs.quantiles[6]), 2)});
    }
  }
  t.print(std::cout);
  t.save_csv("fig8_strength_effect.csv");

  std::cout <<
      "\nPaper shape check: mu_w grows with load strength (more pin cap "
      "through the wire resistance). In this substrate the intrinsic BEOL "
      "variation dominates X_w, so the driver/load trends are present but "
      "milder than the paper's (see DESIGN.md substitution notes); the "
      "calibrated Eq. 7 coefficients capture exactly this residual "
      "dependence.\n";
  return 0;
}
