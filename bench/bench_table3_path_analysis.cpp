// Table III reproduction: critical-path +/-3-sigma delay on the ISCAS85
// benchmarks and the PULPino functional units, comparing:
//   MC          — golden stage-cascaded transistor-level Monte Carlo
//   PT          — PrimeTime-style derated Gaussian corner sum
//   ML          — LUT Gaussian cells + ridge-regression wire model [9]
//   Correction  — D2M-corrected Elmore + global wire variability [8]
//   Ours        — N-sigma cell + wire models (Eq. 10)
// with per-design error percentages (vs MC +3s for the single-number
// baselines, vs both tails for ours) and runtimes.
//
// Default mode runs a representative subset; NSDC_FULL=1 runs all twelve
// designs at paper-scale sample counts (hours on one core).
#include <chrono>

#include "baselines/corner_sta.hpp"
#include "baselines/correction.hpp"
#include "baselines/mc_reference.hpp"
#include "baselines/ml_wire.hpp"
#include "common.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/timer.hpp"

using namespace nsdc;
using namespace nsdc::bench;

namespace {

GateNetlist build_design(const std::string& name, const CellLibrary& cells,
                         const TechParams& tech) {
  GateNetlist nl = [&] {
    if (name == "ADD") return generate_ripple_adder(full_mode() ? 64 : 32, cells);
    if (name == "SUB") return generate_subtractor(full_mode() ? 64 : 32, cells);
    if (name == "MUL") {
      return generate_array_multiplier(full_mode() ? 24 : 12, cells);
    }
    if (name == "DIV") {
      return generate_array_divider(full_mode() ? 24 : 12, cells);
    }
    return generate_iscas_like(name, cells);
  }();
  finalize_design(nl, cells, tech);
  return nl;
}

}  // namespace

int main() {
  print_header("Table III — path analysis on ISCAS85 + PULPino units",
               "Delays in ps; errors in % vs the MC quantiles; runtimes in "
               "seconds. See DESIGN.md for the netlist substitution.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaTimer timer(charlib, cells, tech);

  MlWireConfig ml_cfg;
  if (full_mode()) ml_cfg.training_nets = 96;
  const auto ml_t0 = std::chrono::steady_clock::now();
  const MlWireModel ml = MlWireModel::train_or_load(
      cache_dir() + "/nsdc_mlwire_cache.txt", tech, cells, ml_cfg);
  const double ml_train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - ml_t0)
          .count();
  const PathMlCalculator ml_calc(timer.cell_model(), ml);
  const CornerSta pt(timer.cell_model());
  const CorrectionMethod corr(timer.cell_model(), charlib);

  std::vector<std::string> designs;
  if (full_mode()) {
    for (const auto& s : table3_benchmarks()) designs.push_back(s.name);
  } else {
    designs = {"C432", "C1355", "C1908", "ADD", "MUL"};
  }

  Table t({"Path", "#Nets", "#Cells", "MC -3s", "MC +3s", "PT", "ML", "Corr",
           "Ours -3s", "Ours +3s", "PT err%", "ML err%", "Corr err%",
           "Ours -3s%", "Ours +3s%", "t.MC (s)", "t.Ours (s)"});

  double sum_pt = 0.0, sum_ml = 0.0, sum_corr = 0.0, sum_m3 = 0.0,
         sum_p3 = 0.0, sum_tmc = 0.0, sum_tours = 0.0;
  int n_rows = 0;

  for (const auto& name : designs) {
    const GateNetlist nl = build_design(name, cells, tech);
    const ParasiticDb spef = generate_parasitics(nl, tech);
    const auto analysis = timer.analyze(nl, spef);

    const auto pt_q = pt.path_quantiles(analysis.critical_path);
    const auto ml_q = ml_calc.path_quantiles(analysis.critical_path);
    const auto corr_q = corr.path_quantiles(analysis.critical_path);

    PathMcConfig mcc;
    mcc.samples = scaled_samples(500, 5000);
    mcc.seed = 0x7AB1E3ULL;
    const PathMonteCarlo mc(tech);
    const auto ref = mc.run(analysis.critical_path, mcc);

    const double e_pt = pct_err(pt_q[6], ref.quantiles[6]);
    const double e_ml = pct_err(ml_q[6], ref.quantiles[6]);
    const double e_corr = pct_err(corr_q[6], ref.quantiles[6]);
    const double e_m3 = pct_err(analysis.quantiles[0], ref.quantiles[0]);
    const double e_p3 = pct_err(analysis.quantiles[6], ref.quantiles[6]);

    t.add_row({name, std::to_string(nl.num_nets()),
               std::to_string(nl.num_cells()),
               format_fixed(to_ps(ref.quantiles[0]), 0),
               format_fixed(to_ps(ref.quantiles[6]), 0),
               format_fixed(to_ps(pt_q[6]), 0),
               format_fixed(to_ps(ml_q[6]), 0),
               format_fixed(to_ps(corr_q[6]), 0),
               format_fixed(to_ps(analysis.quantiles[0]), 0),
               format_fixed(to_ps(analysis.quantiles[6]), 0),
               format_fixed(e_pt, 1), format_fixed(e_ml, 1),
               format_fixed(e_corr, 1), format_fixed(e_m3, 1),
               format_fixed(e_p3, 1), format_fixed(ref.runtime_seconds, 1),
               format_fixed(analysis.runtime_seconds, 3)});
    sum_pt += std::abs(e_pt);
    sum_ml += std::abs(e_ml);
    sum_corr += std::abs(e_corr);
    sum_m3 += std::abs(e_m3);
    sum_p3 += std::abs(e_p3);
    sum_tmc += ref.runtime_seconds;
    sum_tours += analysis.runtime_seconds;
    ++n_rows;
  }
  const double n = n_rows;
  t.add_row({"Avg.|err|", "-", "-", "-", "-", "-", "-", "-", "-", "-",
             format_fixed(sum_pt / n, 1), format_fixed(sum_ml / n, 1),
             format_fixed(sum_corr / n, 1), format_fixed(sum_m3 / n, 1),
             format_fixed(sum_p3 / n, 1), format_fixed(sum_tmc, 1),
             format_fixed(sum_tours, 3)});
  t.print(std::cout);
  t.save_csv("table3_path_analysis.csv");

  std::cout << "\nML wire model training time: " << format_fixed(ml_train_s, 1)
            << " s (cached for later runs)\n";
  std::cout << "Speedup of the N-sigma flow over MC: "
            << format_fixed(sum_tmc / std::max(sum_tours, 1e-9), 0) << "x\n";
  std::cout << "\nPaper shape check (paper avg |err| vs MC +3s: PT 31.4%, "
               "ML 18.3%, Correction 11.7%, Ours 3.6% / -3s 5.6%; speed "
               "103x): ours must beat every baseline at both tails and run "
               "orders of magnitude faster than MC.\n";
  return 0;
}
