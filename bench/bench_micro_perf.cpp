// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// device evaluation, transient stepping, Elmore extraction and model
// evaluation — the terms behind the Table III runtime columns.
#include <benchmark/benchmark.h>

#include "core/nsigma_cell.hpp"
#include "parasitics/wiregen.hpp"
#include "pdk/cellgen.hpp"
#include "spice/transient.hpp"
#include "stats/regression.hpp"
#include "util/rng.hpp"

namespace nsdc {
namespace {

void BM_MosEval(benchmark::State& state) {
  MosParams p;
  double vg = 0.1;
  for (auto _ : state) {
    vg = vg > 0.59 ? 0.1 : vg + 0.01;
    benchmark::DoNotOptimize(mos_eval(p, 0.6, vg, 0.0));
  }
}
BENCHMARK(BM_MosEval);

void BM_InverterTransient(benchmark::State& state) {
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  for (auto _ : state) {
    Circuit ckt;
    const NodeId vdd = ckt.make_node("vdd");
    ckt.add_vsource(vdd, kGround, Pwl::constant(tech.vdd));
    ckt.set_initial_voltage(vdd, tech.vdd);
    const NodeId in = ckt.make_node("in");
    ckt.add_vsource(in, kGround, Pwl::ramp(20e-12, 0.0, tech.vdd, 10e-12));
    CellNetlister nl(tech);
    const NodeId ins[] = {in};
    const NodeId out = nl.instantiate(ckt, lib.by_name("INVx1"), ins, vdd,
                                      GlobalCorner::nominal(), nullptr);
    ckt.set_initial_voltage(out, tech.vdd);
    ckt.add_capacitor(out, kGround, 1.5e-15);
    TransientOptions opts;
    opts.tstop = 500e-12;
    benchmark::DoNotOptimize(run_transient(ckt, opts));
  }
}
BENCHMARK(BM_InverterTransient)->Unit(benchmark::kMillisecond);

void BM_ElmoreExtraction(benchmark::State& state) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  Rng rng(1);
  std::vector<std::string> pins;
  for (int i = 0; i < 6; ++i) pins.push_back("p" + std::to_string(i));
  const RcTree tree = gen.generate(rng, pins);
  for (auto _ : state) {
    for (const auto& sink : tree.sinks()) {
      benchmark::DoNotOptimize(tree.elmore(sink.node));
    }
  }
}
BENCHMARK(BM_ElmoreExtraction);

void BM_OlsFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1, 1);
    rows.push_back({1.0, x, x * x, x * x * x});
    y.push_back(1 + x + rng.normal(0, 0.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(least_squares(rows, y, 1e-10));
  }
}
BENCHMARK(BM_OlsFit);

void BM_QuantileModelEval(benchmark::State& state) {
  // Evaluate the Table-I quantile expressions over calibrated moments —
  // the per-stage cost of the N-sigma timer.
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 0.9;
  m.kappa = 1.4;
  std::vector<Moments> ms(64, m);
  std::vector<std::array<double, 7>> qs;
  for (auto& mm : ms) {
    std::array<double, 7> q{};
    for (int lv = 0; lv < 7; ++lv) {
      q[static_cast<std::size_t>(lv)] = mm.mu + (lv - 3) * mm.sigma;
    }
    qs.push_back(q);
  }
  const auto coefs = TableICoefficients::fit(ms, qs);
  for (auto _ : state) {
    m.gamma += 1e-6;
    benchmark::DoNotOptimize(coefs.quantiles(m));
  }
}
BENCHMARK(BM_QuantileModelEval);

}  // namespace
}  // namespace nsdc

BENCHMARK_MAIN();
