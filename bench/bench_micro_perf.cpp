// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// device evaluation, transient stepping, Elmore extraction and model
// evaluation — the terms behind the Table III runtime columns. The custom
// main() additionally runs serial-vs-parallel scaling measurements for the
// levelized STA engine (sta_parallel_perf.json, skip with --no_sta_scaling),
// the sharded netlist Monte Carlo including a grain sweep
// (netmc_parallel_perf.json, skip with --no_netmc_scaling), the
// per-edit cost of the incremental STA engine across fanout-cone sizes
// (incremental_sta_perf.json, skip with --no_incremental_scaling), the
// write/restore overhead of the netlist-MC checkpoint layer
// (netmc_checkpoint_perf.json, skip with --no_checkpoint_perf), the
// certified interval propagation versus the nominal STA it brackets
// (analysis_perf.json, skip with --no_analysis_perf), the
// analytic-SSTA-vs-Monte-Carlo sweep across design sizes
// (ssta_analytic_perf.json, skip with --no_ssta_sweep), and the
// flat-SoA-graph vs legacy-netlist STA throughput/memory gate at 100k-1M
// cells (flatgraph_perf.json, skip with --no_flatgraph_sweep), the
// nsdc_serve daemon's request throughput over a unix socket
// (serve_perf.json, skip with --no_serve_perf), and the multi-process
// shard-coordinator worker sweep with its kill/recovery byte-identity
// gate (dist_perf.json, skip with --no_dist_sweep). Every JSON
// record opens with the shared perfjson envelope (schema_version + host).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "analysis/analysis.hpp"
#include "dist/bundle.hpp"
#include "dist/coordinator.hpp"
#include "net/client.hpp"
#include "netlist/flatgraph.hpp"
#include "perfjson.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "core/nsigma_cell.hpp"
#include "netlist/designgen.hpp"
#include "parasitics/wiregen.hpp"
#include "pdk/cellgen.hpp"
#include "spice/transient.hpp"
#include "core/nsigma_wire.hpp"
#include "sta/annotate.hpp"
#include "sta/engine.hpp"
#include "sta/incremental.hpp"
#include "sta/netmc.hpp"
#include "sta/ssta_analytic.hpp"
#include "stats/regression.hpp"
#include "synthetic_charlib.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

namespace nsdc {
namespace {

void BM_MosEval(benchmark::State& state) {
  MosParams p;
  double vg = 0.1;
  for (auto _ : state) {
    vg = vg > 0.59 ? 0.1 : vg + 0.01;
    benchmark::DoNotOptimize(mos_eval(p, 0.6, vg, 0.0));
  }
}
BENCHMARK(BM_MosEval);

void BM_InverterTransient(benchmark::State& state) {
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  for (auto _ : state) {
    Circuit ckt;
    const NodeId vdd = ckt.make_node("vdd");
    ckt.add_vsource(vdd, kGround, Pwl::constant(tech.vdd));
    ckt.set_initial_voltage(vdd, tech.vdd);
    const NodeId in = ckt.make_node("in");
    ckt.add_vsource(in, kGround, Pwl::ramp(20e-12, 0.0, tech.vdd, 10e-12));
    CellNetlister nl(tech);
    const NodeId ins[] = {in};
    const NodeId out = nl.instantiate(ckt, lib.by_name("INVx1"), ins, vdd,
                                      GlobalCorner::nominal(), nullptr);
    ckt.set_initial_voltage(out, tech.vdd);
    ckt.add_capacitor(out, kGround, 1.5e-15);
    TransientOptions opts;
    opts.tstop = 500e-12;
    benchmark::DoNotOptimize(run_transient(ckt, opts));
  }
}
BENCHMARK(BM_InverterTransient)->Unit(benchmark::kMillisecond);

void BM_ElmoreExtraction(benchmark::State& state) {
  const TechParams tech = TechParams::nominal28();
  const WireGenerator gen(tech);
  Rng rng(1);
  std::vector<std::string> pins;
  for (int i = 0; i < 6; ++i) pins.push_back("p" + std::to_string(i));
  const RcTree tree = gen.generate(rng, pins);
  for (auto _ : state) {
    for (const auto& sink : tree.sinks()) {
      benchmark::DoNotOptimize(tree.elmore(sink.node));
    }
  }
}
BENCHMARK(BM_ElmoreExtraction);

void BM_OlsFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1, 1);
    rows.push_back({1.0, x, x * x, x * x * x});
    y.push_back(1 + x + rng.normal(0, 0.1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(least_squares(rows, y, 1e-10));
  }
}
BENCHMARK(BM_OlsFit);

void BM_QuantileModelEval(benchmark::State& state) {
  // Evaluate the Table-I quantile expressions over calibrated moments —
  // the per-stage cost of the N-sigma timer.
  Moments m;
  m.mu = 80e-12;
  m.sigma = 20e-12;
  m.gamma = 0.9;
  m.kappa = 1.4;
  std::vector<Moments> ms(64, m);
  std::vector<std::array<double, 7>> qs;
  for (auto& mm : ms) {
    std::array<double, 7> q{};
    for (int lv = 0; lv < 7; ++lv) {
      q[static_cast<std::size_t>(lv)] = mm.mu + (lv - 3) * mm.sigma;
    }
    qs.push_back(q);
  }
  const auto coefs = TableICoefficients::fit(ms, qs);
  for (auto _ : state) {
    m.gamma += 1e-6;
    benchmark::DoNotOptimize(coefs.quantiles(m));
  }
}
BENCHMARK(BM_QuantileModelEval);

// ------------------------------------------- parallel STA scaling -------

/// Serial-vs-parallel wall-clock for the levelized STA engine on a
/// generated ≥5k-cell design, at 1/2/4/8 worker lanes. Emits a JSON perf
/// record and verifies every parallel run is bit-identical to the serial
/// reference (the engine's determinism contract).
int run_sta_scaling(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  // NAND2x1/INVx1-only structural design, so the fast synthetic
  // characterization covers every arc (full characterization takes
  // minutes and measures the same engine code).
  const CharLib charlib = testfix::make_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  int bits = 28;
  GateNetlist netlist = generate_array_multiplier(bits, lib);
  while (netlist.num_cells() < 5000 && bits < 64) {
    netlist = generate_array_multiplier(++bits, lib);
  }
  const ParasiticDb parasitics = generate_parasitics(netlist, tech);
  std::cerr << "[sta-scaling] design MUL" << bits << ": "
            << netlist.num_cells() << " cells, "
            << netlist.levelization().levels.size() << " levels, machine has "
            << default_threads() << " hardware lane(s)\n";

  auto time_run = [&](unsigned threads, StaEngine::Result* out) {
    StaConfig cfg;
    cfg.exec.threads = threads;
    cfg.min_parallel_cells = threads > 1 ? 1 : netlist.num_cells() + 1;
    const StaEngine engine(model, tech, cfg);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      auto res = engine.run(netlist, parasitics);
      const auto t1 = clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
      if (out) *out = std::move(res);
    }
    return best;
  };

  StaEngine::Result ref;
  const double serial_s = time_run(1, &ref);

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "sta_scaling");
  json << ",\n  \"design\": \"" << netlist.name() << "\",\n"
       << "  \"cells\": " << netlist.num_cells() << ",\n"
       << "  \"levels\": " << netlist.levelization().levels.size() << ",\n"
       << "  \"serial_seconds\": " << serial_s << ",\n"
       << "  \"runs\": [";
  bool first = true;
  bool all_identical = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    StaEngine::Result got;
    const double secs = time_run(threads, &got);
    bool identical = got.nets.size() == ref.nets.size() &&
                     got.max_arrival == ref.max_arrival;
    for (std::size_t n = 0; identical && n < ref.nets.size(); ++n) {
      identical =
          std::memcmp(&got.nets[n].arrival, &ref.nets[n].arrival,
                      sizeof(ref.nets[n].arrival)) == 0 &&
          std::memcmp(&got.nets[n].slew, &ref.nets[n].slew,
                      sizeof(ref.nets[n].slew)) == 0;
    }
    all_identical = all_identical && identical;
    json << (first ? "" : ",") << "\n    {\"threads\": " << threads
         << ", \"seconds\": " << secs
         << ", \"speedup\": " << serial_s / secs
         << ", \"bit_identical\": " << (identical ? "true" : "false") << "}";
    first = false;
    std::cerr << "[sta-scaling] threads=" << threads << "  " << secs * 1e3
              << " ms  speedup=" << serial_s / secs
              << (identical ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ]\n}\n";
  std::cerr << "[sta-scaling] wrote " << json_path << "\n";
  if (!all_identical) {
    std::cerr << "[sta-scaling] ERROR: parallel result diverged from "
                 "serial reference\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------- parallel netlist-MC scaling

/// Serial-vs-parallel wall-clock for the sharded netlist Monte Carlo on a
/// generated ≥1k-cell design at 1/2/4/8 worker lanes, plus a grain sweep.
/// Every parallel and every grain configuration must reproduce the serial
/// reference byte-for-byte (the sampler's determinism contract); the JSON
/// perf record lands in netmc_parallel_perf.json.
int run_netmc_scaling(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  const CharLib charlib = testfix::make_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);
  const NSigmaWireModel wire_model = NSigmaWireModel::fit(charlib, lib);

  int bits = 12;
  GateNetlist netlist = generate_array_multiplier(bits, lib);
  while (netlist.num_cells() < 1000 && bits < 64) {
    netlist = generate_array_multiplier(++bits, lib);
  }
  const ParasiticDb parasitics = generate_parasitics(netlist, tech);
  std::cerr << "[netmc-scaling] design MUL" << bits << ": "
            << netlist.num_cells() << " cells, machine has "
            << default_threads() << " hardware lane(s)\n";

  const NetlistMonteCarlo mc(model, wire_model, tech);
  constexpr int kSamples = 512;
  auto timed = [&](unsigned threads, std::size_t grain,
                   NetlistMonteCarlo::Result* out) {
    McConfig cfg;
    cfg.samples = kSamples;
    cfg.seed = 4242;
    cfg.threads = threads;
    cfg.exec.grain = grain;
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      auto res = mc.run(netlist, parasitics, cfg);
      best = std::min(best, std::chrono::duration<double>(
                                clock::now() - t0).count());
      if (out) *out = std::move(res);
    }
    return best;
  };

  auto identical = [](const NetlistMonteCarlo::Result& got,
                      const NetlistMonteCarlo::Result& ref) {
    if (got.circuit_samples.size() != ref.circuit_samples.size() ||
        got.nets.size() != ref.nets.size() || got.worst_po != ref.worst_po) {
      return false;
    }
    if (!got.circuit_samples.empty() &&
        std::memcmp(got.circuit_samples.data(), ref.circuit_samples.data(),
                    got.circuit_samples.size() * sizeof(double)) != 0) {
      return false;
    }
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (std::size_t e = 0; e < 2; ++e) {
        if (std::memcmp(&got.nets[n][e].moments, &ref.nets[n][e].moments,
                        sizeof(Moments)) != 0) {
          return false;
        }
      }
    }
    return true;
  };

  NetlistMonteCarlo::Result ref;
  const double serial_s = timed(1, 0, &ref);

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "netmc_scaling");
  json << ",\n  \"design\": \"" << netlist.name() << "\",\n"
       << "  \"cells\": " << netlist.num_cells() << ",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"accum_blocks\": " << NetlistMonteCarlo::kAccumBlocks << ",\n"
       << "  \"serial_seconds\": " << serial_s << ",\n"
       << "  \"runs\": [";
  bool first = true;
  bool all_identical = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    NetlistMonteCarlo::Result got;
    const double secs = timed(threads, 0, &got);
    const bool same = identical(got, ref);
    all_identical = all_identical && same;
    json << (first ? "" : ",") << "\n    {\"threads\": " << threads
         << ", \"seconds\": " << secs
         << ", \"speedup\": " << serial_s / secs
         << ", \"bit_identical\": " << (same ? "true" : "false") << "}";
    first = false;
    std::cerr << "[netmc-scaling] threads=" << threads << "  " << secs * 1e3
              << " ms  speedup=" << serial_s / secs
              << (same ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ],\n  \"grain_sweep\": [";
  first = true;
  for (const std::size_t grain : {1u, 2u, 4u, 8u}) {
    NetlistMonteCarlo::Result got;
    const double secs = timed(4, grain, &got);
    const bool same = identical(got, ref);
    all_identical = all_identical && same;
    json << (first ? "" : ",") << "\n    {\"grain\": " << grain
         << ", \"threads\": 4, \"seconds\": " << secs
         << ", \"bit_identical\": " << (same ? "true" : "false") << "}";
    first = false;
    std::cerr << "[netmc-scaling] grain=" << grain << " threads=4  "
              << secs * 1e3 << " ms"
              << (same ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ]\n}\n";
  std::cerr << "[netmc-scaling] wrote " << json_path << "\n";
  if (!all_identical) {
    std::cerr << "[netmc-scaling] ERROR: sharded result diverged from "
                 "serial reference\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- analytic SSTA sweep ------

/// Analytic four-moment SSTA vs the sharded netlist Monte Carlo across
/// design sizes: wall time on both sides (MC at the 100k-sample reference
/// count the acceptance contract uses), the speedup ratio, worst-case
/// N-sigma quantile disagreement in sigma units, and the engine's
/// thread-count determinism (1 vs 4 lanes byte-identical). The JSON perf
/// record lands in ssta_analytic_perf.json.
int run_ssta_sweep(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  // Random mapped designs draw from the full cell library, so the cell
  // model fits the full synthetic charlib; only make_charlib() carries
  // wire MC observations, so the wire model always fits from it.
  const NSigmaCellModel model =
      NSigmaCellModel::fit(testfix::make_full_charlib());
  const NSigmaWireModel wire_model =
      NSigmaWireModel::fit(testfix::make_charlib(), lib);
  constexpr int kMcSamples = 100000;

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "ssta_sweep");
  json << ",\n  \"mc_samples\": " << kMcSamples << ",\n"
       << "  \"sweep\": [";
  bool first = true;
  bool ok = true;
  for (const int target : {100, 250, 500}) {
    RandomNetlistSpec spec;
    spec.name = "ssta_sweep_" + std::to_string(target);
    spec.target_cells = target;
    spec.seed = 42;
    const GateNetlist netlist = generate_random_mapped(spec, lib);
    const ParasiticDb parasitics = generate_parasitics(netlist, tech);

    AnalyticSstaOptions aopt;
    aopt.sta.exec.threads = 1;
    const AnalyticSsta engine(model, wire_model, tech, aopt);
    AnalyticSsta::Result an;
    double an_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      an = engine.run(netlist, parasitics);
      an_s = std::min(an_s,
                      std::chrono::duration<double>(clock::now() - t0).count());
    }

    // Determinism: 4 worker lanes must reproduce the serial run exactly.
    AnalyticSstaOptions popt;
    popt.sta.exec.threads = 4;
    const AnalyticSsta par_engine(model, wire_model, tech, popt);
    const auto par = par_engine.run(netlist, parasitics);
    bool identical = par.nets.size() == an.nets.size();
    for (std::size_t n = 0; identical && n < an.nets.size(); ++n) {
      for (std::size_t e = 0; e < 2; ++e) {
        identical = std::memcmp(&par.nets[n][e].moments,
                                &an.nets[n][e].moments, sizeof(Moments)) == 0;
        if (!identical) break;
      }
    }
    ok = ok && identical;

    const NetlistMonteCarlo mc(model, wire_model, tech);
    McConfig cfg;
    cfg.samples = kMcSamples;
    cfg.seed = 0x55A11;
    cfg.threads = 1;
    const auto t0 = clock::now();
    const auto mcr = mc.run(netlist, parasitics, cfg);
    const double mc_s =
        std::chrono::duration<double>(clock::now() - t0).count();

    // Worst PO quantile disagreement, in units of that PO's sigma.
    double worst_dq = 0.0;
    for (std::size_t p = 0; p < mcr.po_nets.size(); ++p) {
      const double sig = mcr.po_moments[p].sigma;
      if (!(sig > 0.0)) continue;
      for (std::size_t l = 0; l < 7; ++l) {
        worst_dq = std::max(worst_dq,
                            std::abs(an.po_quantiles[p][l] -
                                     mcr.po_quantiles[p][l]) / sig);
      }
    }

    json << (first ? "" : ",") << "\n    {\"design\": \"" << netlist.name()
         << "\", \"cells\": " << netlist.num_cells()
         << ", \"levels\": " << an.levels
         << ", \"analytic_seconds\": " << an_s
         << ", \"mc_seconds\": " << mc_s
         << ", \"speedup\": " << mc_s / an_s
         << ", \"worst_po_quantile_err_sigma\": " << worst_dq
         << ", \"threads_byte_identical\": " << (identical ? "true" : "false")
         << "}";
    first = false;
    std::cerr << "[ssta-sweep] " << netlist.name() << ": "
              << netlist.num_cells() << " cells  analytic " << an_s * 1e3
              << " ms  mc " << mc_s << " s  speedup " << mc_s / an_s
              << "  worst dq " << worst_dq << " sigma"
              << (identical ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ]\n}\n";
  std::cerr << "[ssta-sweep] wrote " << json_path << "\n";
  if (!ok) {
    std::cerr << "[ssta-sweep] ERROR: parallel analytic result diverged "
                 "from serial reference\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- incremental STA cost -----

/// Per-edit cost of the incremental engine versus a full re-run, across
/// cone sizes. Retypes one cell per sampled level of a ≥5k-cell design:
/// a cell near the primary inputs has a large fanout cone (expensive
/// update), one near the outputs a small cone (cheap update). Each timed
/// update is checked bit-identical to a fresh full run; the JSON record
/// lands in incremental_sta_perf.json.
/// Checkpoint overhead of the netlist MC: baseline vs checkpointed run
/// (the per-block serialization + flush cost), checkpoint file size, load
/// time, and the time a resumed run takes when every block is already on
/// disk. Written to netmc_checkpoint_perf.json.
int run_checkpoint_perf(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  const CharLib charlib = testfix::make_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);
  const NSigmaWireModel wire_model = NSigmaWireModel::fit(charlib, lib);

  int bits = 12;
  GateNetlist netlist = generate_array_multiplier(bits, lib);
  while (netlist.num_cells() < 1000 && bits < 64) {
    netlist = generate_array_multiplier(++bits, lib);
  }
  const ParasiticDb parasitics = generate_parasitics(netlist, tech);
  const std::string ck_path = "netmc_checkpoint_perf.ck";
  constexpr int kSamples = 512;
  std::cerr << "[checkpoint-perf] design MUL" << bits << ": "
            << netlist.num_cells() << " cells, " << kSamples << " samples\n";

  McConfig cfg;
  cfg.samples = kSamples;
  cfg.seed = 4242;
  cfg.threads = 1;

  auto timed = [&](const NetMcOptions& opt, NetlistMonteCarlo::Result* out) {
    const NetlistMonteCarlo mc(model, wire_model, tech, opt);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      auto res = mc.run(netlist, parasitics, cfg);
      best = std::min(best, std::chrono::duration<double>(
                                clock::now() - t0).count());
      if (out) *out = std::move(res);
    }
    return best;
  };

  NetlistMonteCarlo::Result base_res;
  const double base_s = timed({}, &base_res);

  NetMcOptions ck_opt;
  ck_opt.checkpoint_path = ck_path;
  NetlistMonteCarlo::Result ck_res;
  const double ck_s = timed(ck_opt, &ck_res);

  std::uintmax_t ck_bytes = 0;
  {
    std::error_code ec;
    ck_bytes = std::filesystem::file_size(ck_path, ec);
    if (ec) ck_bytes = 0;
  }
  const std::size_t n_blocks =
      std::min<std::size_t>(NetlistMonteCarlo::kAccumBlocks, kSamples);

  // Pure load cost of a complete checkpoint.
  double load_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<Diagnostic> diags;
    const auto t0 = clock::now();
    const auto data = load_mc_checkpoint(ck_path, nullptr, &diags);
    load_s = std::min(load_s, std::chrono::duration<double>(
                                  clock::now() - t0).count());
    if (!data || data->blocks.size() != n_blocks) {
      std::cerr << "[checkpoint-perf] FAIL: load returned "
                << (data ? data->blocks.size() : 0) << " of " << n_blocks
                << " blocks\n";
      return 1;
    }
  }

  // Resume with everything on disk: restore + re-append, no sampling.
  ck_opt.resume = true;
  NetlistMonteCarlo::Result resumed;
  const double resume_s = timed(ck_opt, &resumed);
  const bool identical =
      resumed.circuit_samples.size() == base_res.circuit_samples.size() &&
      std::memcmp(resumed.circuit_samples.data(),
                  base_res.circuit_samples.data(),
                  base_res.circuit_samples.size() * sizeof(double)) == 0;
  std::remove(ck_path.c_str());
  if (!identical) {
    std::cerr << "[checkpoint-perf] FAIL: resumed run is not byte-identical"
              << "\n";
    return 1;
  }

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "checkpoint_perf");
  json << ",\n  \"design\": \"" << netlist.name() << "\",\n"
       << "  \"cells\": " << netlist.num_cells() << ",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"blocks\": " << n_blocks << ",\n"
       << "  \"baseline_seconds\": " << base_s << ",\n"
       << "  \"checkpointed_seconds\": " << ck_s << ",\n"
       << "  \"write_overhead_seconds\": " << (ck_s - base_s) << ",\n"
       << "  \"write_overhead_per_block_seconds\": "
       << (ck_s - base_s) / static_cast<double>(n_blocks) << ",\n"
       << "  \"checkpoint_bytes\": " << ck_bytes << ",\n"
       << "  \"load_seconds\": " << load_s << ",\n"
       << "  \"full_resume_seconds\": " << resume_s << ",\n"
       << "  \"resume_byte_identical\": " << (identical ? "true" : "false")
       << "\n}\n";
  std::cerr << "[checkpoint-perf] baseline " << base_s << "s, checkpointed "
            << ck_s << "s (+" << 100.0 * (ck_s - base_s) / base_s
            << "%), file " << ck_bytes << " bytes, load " << load_s
            << "s, full resume " << resume_s << "s -> " << json_path << "\n";
  return 0;
}

int run_incremental_scaling(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  const CharLib charlib = testfix::make_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  int bits = 28;
  GateNetlist netlist = generate_array_multiplier(bits, lib);
  while (netlist.num_cells() < 5000 && bits < 64) {
    netlist = generate_array_multiplier(++bits, lib);
  }
  const ParasiticDb parasitics = generate_parasitics(netlist, tech);
  const std::size_t num_levels = netlist.levelization().levels.size();
  std::cerr << "[inc-scaling] design MUL" << bits << ": "
            << netlist.num_cells() << " cells, " << num_levels
            << " levels\n";

  // Serial on both engines: the comparison is algorithmic work (cone vs
  // whole design), not lane scaling — that is run_sta_scaling's job.
  StaConfig cfg;
  cfg.exec.threads = 1;
  cfg.min_parallel_cells = netlist.num_cells() + 1;
  const StaEngine full_engine(model, tech, cfg);

  double full_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    const auto res = full_engine.run(netlist, parasitics);
    full_s = std::min(full_s,
                      std::chrono::duration<double>(clock::now() - t0).count());
  }

  IncrementalSta inc(model, tech, cfg);
  inc.bind(netlist, parasitics);

  auto identical = [](const StaEngine::Result& got,
                      const StaEngine::Result& want) {
    if (got.nets.size() != want.nets.size() ||
        got.max_arrival != want.max_arrival) {
      return false;
    }
    for (std::size_t n = 0; n < want.nets.size(); ++n) {
      if (std::memcmp(&got.nets[n].arrival, &want.nets[n].arrival,
                      sizeof(want.nets[n].arrival)) != 0 ||
          std::memcmp(&got.nets[n].slew, &want.nets[n].slew,
                      sizeof(want.nets[n].slew)) != 0) {
        return false;
      }
    }
    return true;
  };

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "incremental_scaling");
  json << ",\n  \"design\": \"" << netlist.name() << "\",\n"
       << "  \"cells\": " << netlist.num_cells() << ",\n"
       << "  \"levels\": " << num_levels << ",\n"
       << "  \"full_run_seconds\": " << full_s << ",\n"
       << "  \"edits\": [";
  bool first = true;
  bool all_identical = true;
  constexpr int kSampledLevels = 10;
  for (int s = 0; s < kSampledLevels; ++s) {
    const std::size_t level =
        s * (num_levels - 1) / (kSampledLevels - 1);
    const int cell = netlist.levelization().levels[level].front();
    const CellType* orig = netlist.cell(cell).type;
    const CellType& bigger = lib.by_func(orig->func(), orig->strength() * 2);

    const auto t0 = clock::now();
    netlist.set_cell_type(cell, bigger);
    inc.update();
    const double edit_s =
        std::chrono::duration<double>(clock::now() - t0).count();
    const auto stats = inc.last_stats();

    // The incremental result after the retype must match a fresh full run
    // of the edited netlist bit-for-bit.
    const bool same =
        identical(inc.result(), full_engine.run(netlist, parasitics));
    all_identical = all_identical && same;

    json << (first ? "" : ",") << "\n    {\"level\": " << level
         << ", \"cone_cells\": " << stats.cells_recomputed
         << ", \"seconds\": " << edit_s
         << ", \"speedup_vs_full\": " << full_s / edit_s
         << ", \"bit_identical\": " << (same ? "true" : "false") << "}";
    first = false;
    std::cerr << "[inc-scaling] level=" << level << "  cone="
              << stats.cells_recomputed << "/" << netlist.num_cells()
              << " cells  " << edit_s * 1e6 << " us  speedup="
              << full_s / edit_s << (same ? "" : "  MISMATCH") << "\n";

    netlist.set_cell_type(cell, *orig);  // roll back for the next sample
    inc.update();
  }
  json << "\n  ]\n}\n";
  std::cerr << "[inc-scaling] wrote " << json_path << "\n";
  if (!all_identical) {
    std::cerr << "[inc-scaling] ERROR: incremental result diverged from "
                 "full re-run\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- interval propagation -----

/// Cost of the certified interval propagation (nsdc_analyze's tentpole
/// pass) versus the nominal mean STA it brackets, across design sizes,
/// plus the 1-vs-4-lane byte-identity of the propagated bounds. The JSON
/// record lands in analysis_perf.json.
int run_analysis_perf(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  const NSigmaCellModel model =
      NSigmaCellModel::fit(testfix::make_full_charlib());
  const NSigmaWireModel wire_model =
      NSigmaWireModel::fit(testfix::make_charlib(), lib);

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "analysis_perf");
  json << ",\n  \"sweep\": [";
  bool first = true;
  bool ok = true;
  for (const int target : {100, 500, 2000}) {
    RandomNetlistSpec spec;
    spec.name = "analysis_sweep_" + std::to_string(target);
    spec.target_cells = target;
    spec.seed = 42;
    const GateNetlist netlist = generate_random_mapped(spec, lib);
    const ParasiticDb parasitics = generate_parasitics(netlist, tech);

    StaConfig scfg;
    scfg.exec.threads = 1;
    const StaEngine sta(model, tech, scfg);
    StaEngine::Result nominal;
    double sta_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      nominal = sta.run(netlist, parasitics);
      sta_s = std::min(
          sta_s, std::chrono::duration<double>(clock::now() - t0).count());
    }

    AnalysisInput input;
    input.netlist = &netlist;
    input.parasitics = &parasitics;
    input.cell_model = &model;
    input.wire_model = &wire_model;
    input.tech = &tech;
    AnalysisOptions aopt;
    aopt.exec.threads = 1;
    IntervalResult iv;
    double iv_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = clock::now();
      iv = propagate_intervals(input, aopt, nominal);
      iv_s = std::min(
          iv_s, std::chrono::duration<double>(clock::now() - t0).count());
    }

    AnalysisOptions popt;
    popt.exec.threads = 4;
    const IntervalResult piv = propagate_intervals(input, popt, nominal);
    bool identical = piv.nets.size() == iv.nets.size();
    for (std::size_t n = 0; identical && n < iv.nets.size(); ++n) {
      identical = std::memcmp(&piv.nets[n].arrival, &iv.nets[n].arrival,
                              sizeof(iv.nets[n].arrival)) == 0 &&
                  std::memcmp(&piv.nets[n].slew, &iv.nets[n].slew,
                              sizeof(iv.nets[n].slew)) == 0;
    }
    ok = ok && identical;

    json << (first ? "" : ",") << "\n    {\"design\": \"" << netlist.name()
         << "\", \"cells\": " << netlist.num_cells()
         << ", \"levels\": " << iv.levels
         << ", \"sta_seconds\": " << sta_s
         << ", \"interval_seconds\": " << iv_s
         << ", \"cost_vs_sta\": " << iv_s / sta_s
         << ", \"threads_byte_identical\": " << (identical ? "true" : "false")
         << "}";
    first = false;
    std::cerr << "[analysis-perf] " << netlist.name() << ": "
              << netlist.num_cells() << " cells  sta " << sta_s * 1e3
              << " ms  intervals " << iv_s * 1e3 << " ms  ratio "
              << iv_s / sta_s << (identical ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ]\n}\n";
  std::cerr << "[analysis-perf] wrote " << json_path << "\n";
  if (!ok) {
    std::cerr << "[analysis-perf] ERROR: parallel interval propagation "
                 "diverged from serial reference\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- flat-graph throughput ----

/// Heap bytes currently allocated, or 0 when the platform has no
/// mallinfo2 (the JSON then records only the arena-accounted footprint).
std::size_t heap_bytes_now() {
#if defined(__GLIBC__)
  return static_cast<std::size_t>(mallinfo2().uordblks);
#else
  return 0;
#endif
}

/// Million-cell-scale throughput/memory gate for the compiled SoA timing
/// graph: legacy GateNetlist-walking STA versus the FlatTimingGraph path
/// on ~100k / ~300k / ~1M-cell generated designs. Records compile rate,
/// nominal-STA cells/sec on both paths, bytes/cell (flat arena accounting
/// plus mallinfo2 deltas for both representations), and verifies the flat
/// results byte-identical to legacy at 1 and 4 lanes. Fails (exit 1) when
/// the flat path is not >= 1.3x legacy throughput on the largest design.
/// The JSON record lands in flatgraph_perf.json.
int run_flatgraph_sweep(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  // The scale generators compose everything from NAND2x1/INVx1 (Builder
  // helpers), so the fast synthetic characterization covers every arc.
  const CharLib charlib = testfix::make_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);

  // Size the parameterized generators to ~100k / ~300k / ~1M cells by
  // measuring one tile/stage and scaling the repeat count.
  auto sized = [&](const char* kind, std::size_t target) {
    if (std::strcmp(kind, "xbar") == 0) {
      return generate_wide_crossbar(144, 144, lib);  // ~103k cells
    }
    if (std::strcmp(kind, "divchain") == 0) {
      const std::size_t per =
          generate_divider_chain(16, 1, lib).num_cells();
      const int stages = static_cast<int>((target + per - 1) / per);
      return generate_divider_chain(16, std::max(stages, 1), lib);
    }
    const std::size_t per =
        generate_tiled_multiplier_array(16, 1, lib).num_cells();
    const int tiles = static_cast<int>((target + per - 1) / per);
    return generate_tiled_multiplier_array(16, std::max(tiles, 1), lib);
  };

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "flatgraph_sweep");
  json << ",\n  \"parasitics\": \"none (pin-cap loads)\",\n"
       << "  \"sweep\": [";
  bool first = true;
  bool all_identical = true;
  double largest_speedup = 0.0;
  std::size_t largest_cells = 0;

  const std::pair<const char*, std::size_t> specs[] = {
      {"xbar", 100000}, {"divchain", 300000}, {"mul", 1000000}};
  for (const auto& [kind, target] : specs) {
    const GateNetlist netlist = sized(kind, target);
    // Empty parasitics: at this scale the annotate phase degrades to
    // pin-cap loads on both paths, keeping the measurement on the
    // propagation kernels.
    const ParasiticDb parasitics;
    netlist.levelization();
    const DesignStats st = design_stats(netlist);
    std::cerr << "[flatgraph-sweep] " << design_stats_line(netlist) << "\n";

    const std::size_t heap0 = heap_bytes_now();
    const auto tc0 = clock::now();
    const FlatTimingGraph graph = FlatTimingGraph::compile(netlist);
    const double compile_s =
        std::chrono::duration<double>(clock::now() - tc0).count();
    const std::size_t flat_heap = heap_bytes_now() - heap0;

    // Legacy representation footprint: heap delta of a deep copy of the
    // (levelized) netlist.
    std::size_t legacy_heap = 0;
    {
      const std::size_t before = heap_bytes_now();
      const GateNetlist copy = netlist;
      copy.levelization();
      legacy_heap = heap_bytes_now() - before;
    }

    auto timed_run = [&](bool flat, unsigned threads,
                         StaEngine::Result* out) {
      StaConfig cfg;
      cfg.exec.threads = threads;
      cfg.min_parallel_cells = threads > 1 ? 1 : netlist.num_cells() + 1;
      cfg.use_flatgraph = false;  // legacy path; flat runs use the overload
      const StaEngine engine(model, tech, cfg);
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = clock::now();
        auto res = flat ? engine.run(graph, netlist, parasitics)
                        : engine.run(netlist, parasitics);
        best = std::min(best, std::chrono::duration<double>(
                                  clock::now() - t0).count());
        if (out) *out = std::move(res);
      }
      return best;
    };

    auto identical = [](const StaEngine::Result& a,
                        const StaEngine::Result& b) {
      if (a.nets.size() != b.nets.size() || a.max_arrival != b.max_arrival ||
          a.critical_net != b.critical_net) {
        return false;
      }
      for (std::size_t n = 0; n < b.nets.size(); ++n) {
        if (std::memcmp(&a.nets[n].arrival, &b.nets[n].arrival,
                        sizeof(b.nets[n].arrival)) != 0 ||
            std::memcmp(&a.nets[n].slew, &b.nets[n].slew,
                        sizeof(b.nets[n].slew)) != 0) {
          return false;
        }
      }
      return true;
    };

    StaEngine::Result legacy1, flat1, legacy4, flat4;
    const double legacy1_s = timed_run(false, 1, &legacy1);
    const double flat1_s = timed_run(true, 1, &flat1);
    const double legacy4_s = timed_run(false, 4, &legacy4);
    const double flat4_s = timed_run(true, 4, &flat4);
    const bool same =
        identical(flat1, legacy1) && identical(flat4, legacy4) &&
        identical(legacy4, legacy1);
    all_identical = all_identical && same;

    const double cells = static_cast<double>(netlist.num_cells());
    const double speedup = legacy1_s / flat1_s;
    if (netlist.num_cells() > largest_cells) {
      largest_cells = netlist.num_cells();
      largest_speedup = speedup;
    }

    json << (first ? "" : ",") << "\n    {\"design\": \"" << netlist.name()
         << "\", \"cells\": " << st.cells << ", \"nets\": " << st.nets
         << ", \"max_level\": " << st.max_level
         << ", \"avg_fanout\": " << st.avg_fanout
         << ",\n     \"compile_seconds\": " << compile_s
         << ", \"compile_cells_per_sec\": " << cells / compile_s
         << ",\n     \"legacy_seconds\": " << legacy1_s
         << ", \"flat_seconds\": " << flat1_s
         << ", \"speedup\": " << speedup
         << ", \"legacy_cells_per_sec\": " << cells / legacy1_s
         << ", \"flat_cells_per_sec\": " << cells / flat1_s
         << ",\n     \"legacy_seconds_4t\": " << legacy4_s
         << ", \"flat_seconds_4t\": " << flat4_s
         << ", \"speedup_4t\": " << legacy4_s / flat4_s
         << ",\n     \"flat_bytes_per_cell\": "
         << static_cast<double>(graph.memory_bytes()) / cells
         << ", \"flat_heap_bytes_per_cell\": "
         << static_cast<double>(flat_heap) / cells
         << ", \"legacy_heap_bytes_per_cell\": "
         << static_cast<double>(legacy_heap) / cells
         << ",\n     \"bit_identical\": " << (same ? "true" : "false")
         << "}";
    first = false;
    std::cerr << "[flatgraph-sweep] " << netlist.name() << ": compile "
              << compile_s * 1e3 << " ms (" << cells / compile_s / 1e6
              << " Mcells/s)  legacy " << legacy1_s * 1e3 << " ms  flat "
              << flat1_s * 1e3 << " ms  speedup " << speedup << " (4t "
              << legacy4_s / flat4_s << ")  flat "
              << static_cast<double>(graph.memory_bytes()) / cells
              << " B/cell vs legacy "
              << static_cast<double>(legacy_heap) / cells << " B/cell"
              << (same ? "" : "  MISMATCH") << "\n";
  }
  json << "\n  ],\n  \"largest_design_speedup\": " << largest_speedup
       << ",\n  \"speedup_gate\": 1.3\n}\n";
  std::cerr << "[flatgraph-sweep] wrote " << json_path << "\n";
  if (!all_identical) {
    std::cerr << "[flatgraph-sweep] ERROR: flat result diverged from the "
                 "legacy engine\n";
    return 1;
  }
  if (largest_speedup < 1.3) {
    std::cerr << "[flatgraph-sweep] ERROR: flat speedup " << largest_speedup
              << " on the largest design is below the 1.3x gate\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- serve throughput ---------

/// Requests/sec of the nsdc_serve daemon over a unix socket: baseline
/// arrival queries from one and from four concurrent clients, and a
/// stateful edit session streaming retype batches through IncrementalSta.
/// Every response status is checked; a non-OK answer fails the record.
/// The JSON record lands in serve_perf.json.
int run_serve_perf(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  const TechParams tech = TechParams::nominal28();
  const CellLibrary lib = CellLibrary::standard();
  const CharLib charlib = testfix::make_full_charlib();
  const NSigmaCellModel model = NSigmaCellModel::fit(charlib);
  const NSigmaWireModel wire_model =
      NSigmaWireModel::fit(testfix::make_charlib(), lib);

  RandomNetlistSpec spec;
  spec.name = "serve_perf";
  spec.target_cells = 1500;
  spec.seed = 42;
  GateNetlist netlist = generate_random_mapped(spec, lib);
  finalize_design(netlist, lib, tech);
  const ParasiticDb parasitics = generate_parasitics(netlist, tech);

  serve::ServiceRefs refs;
  refs.netlist = &netlist;
  refs.parasitics = &parasitics;
  refs.cell_library = &lib;
  refs.cell_model = &model;
  refs.wire_model = &wire_model;
  refs.tech = &tech;
  refs.charlib = &charlib;
  serve::Service service(refs);
  const std::string sock =
      (std::filesystem::temp_directory_path() / "nsdc_bench_serve.sock")
          .string();
  serve::Daemon daemon(net::Endpoint::unix_path(sock), service);
  std::thread runner([&] { daemon.run(); });

  const std::string po_name =
      netlist.net(service.baseline().critical_net).name;
  auto call_ok = [](net::Client& c, const std::string& req) {
    const std::string resp = c.call(req);
    net::WireReader r(resp);
    return serve::read_response_head(r).status == serve::Status::kOk;
  };
  bool ok = true;

  // Single client, baseline arrival queries (pure cache reads: the
  // round-trip cost is framing + dispatch, the figure of merit of the
  // transport layer).
  const int kQueries = 4000;
  double arrival_rps = 0.0;
  {
    net::Client client(daemon.endpoint());
    const auto t0 = clock::now();
    for (int i = 0; i < kQueries; ++i) {
      ok = call_ok(client, serve::make_arrival(
                               static_cast<std::uint32_t>(i), po_name)) &&
           ok;
    }
    arrival_rps = kQueries /
                  std::chrono::duration<double>(clock::now() - t0).count();
  }

  // Four concurrent clients, same total request count: measures the
  // batching loop, not just one connection's turnaround.
  double arrival_rps_4c = 0.0;
  {
    const int per_client = kQueries / 4;
    std::vector<std::thread> clients;
    std::array<bool, 4> oks{true, true, true, true};
    const auto t0 = clock::now();
    for (int k = 0; k < 4; ++k) {
      clients.emplace_back([&, k] {
        net::Client client(daemon.endpoint());
        for (int i = 0; i < per_client; ++i) {
          oks[static_cast<std::size_t>(k)] =
              call_ok(client,
                      serve::make_arrival(
                          static_cast<std::uint32_t>(k * per_client + i),
                          po_name)) &&
              oks[static_cast<std::size_t>(k)];
        }
      });
    }
    for (auto& t : clients) t.join();
    arrival_rps_4c = 4.0 * per_client /
                     std::chrono::duration<double>(clock::now() - t0).count();
    for (const bool o : oks) ok = ok && o;
  }

  // Stateful edit session: each request retypes one cell (alternating
  // strengths) and runs the incremental update — requests/sec of the
  // journal -> IncrementalSta path including the timing answer.
  const int kEdits = 200;
  double edit_rps = 0.0;
  {
    net::Client client(daemon.endpoint());
    const std::string open = client.call(serve::make_session_open(1));
    net::WireReader orr(open);
    ok = ok && serve::read_response_head(orr).status == serve::Status::kOk;
    const std::uint32_t session = orr.u32();
    const CellFunc func = netlist.cell(0).type->func();
    const auto t0 = clock::now();
    for (int i = 0; i < kEdits; ++i) {
      serve::SessionEditRequest edit(static_cast<std::uint32_t>(100 + i),
                                     session);
      edit.set_cell_type(0, lib.by_func(func, (i % 2) != 0 ? 4 : 2).name());
      ok = call_ok(client, edit.take()) && ok;
    }
    edit_rps =
        kEdits / std::chrono::duration<double>(clock::now() - t0).count();
    ok = call_ok(client, serve::make_session_close(2, session)) && ok;
  }

  daemon.request_stop();
  runner.join();

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "serve_perf");
  json << ",\n  \"design\": \"" << netlist.name()
       << "\", \"cells\": " << netlist.num_cells()
       << ", \"nets\": " << netlist.num_nets()
       << ",\n  \"transport\": \"unix socket, length-prefixed frames\""
       << ",\n  \"arrival_requests_per_sec\": " << arrival_rps
       << ",\n  \"arrival_requests_per_sec_4_clients\": " << arrival_rps_4c
       << ",\n  \"edit_session_requests_per_sec\": " << edit_rps
       << ",\n  \"requests_served\": " << daemon.requests_served()
       << ",\n  \"all_responses_ok\": " << (ok ? "true" : "false") << "\n}\n";
  std::cerr << "[serve-perf] " << netlist.num_cells() << " cells: arrival "
            << arrival_rps << " req/s (4 clients " << arrival_rps_4c
            << ")  edit-session " << edit_rps << " req/s\n"
            << "[serve-perf] wrote " << json_path << "\n";
  if (!ok) {
    std::cerr << "[serve-perf] ERROR: a request returned a non-OK status\n";
    return 1;
  }
  return 0;
}

// --------------------------------------------- dist shard sweep ---------

/// Multi-process shard-coordinator sweep (src/dist): wall-clock of the
/// same netlist-MC run at 1/2/4 fork/exec'd workers versus the in-process
/// single-run reference, plus a recovery run with a SIGKILL injected
/// mid-shard (NSDC_FAULTS, inherited by the worker fleet) measuring the
/// retry/resume overhead. Every distributed run — the killed one included
/// — must merge byte-identical to the in-process reference; a mismatch
/// fails the record (exit 1). The JSON record lands in dist_perf.json.
int run_dist_sweep(const std::string& json_path) {
  using clock = std::chrono::steady_clock;
  dist::BundleSpec spec;  // mul/5: the shard tests' deterministic bundle
  spec.design = "mul";
  spec.size = 8;
  constexpr int kSamples = 256;
  constexpr std::uint64_t kSeed = 4242;

  const dist::DesignBundle bundle = dist::make_bundle(spec);
  const NetlistMonteCarlo mc(bundle.cell_model, bundle.wire_model,
                             bundle.tech);
  McConfig cfg;
  cfg.samples = kSamples;
  cfg.seed = kSeed;
  cfg.threads = 1;
  const auto t0 = clock::now();
  const auto ref = mc.run(bundle.netlist, bundle.parasitics, cfg);
  const double local_s =
      std::chrono::duration<double>(clock::now() - t0).count();
  std::cerr << "[dist-sweep] design MUL" << spec.size << ": "
            << bundle.netlist.num_cells() << " cells, " << kSamples
            << " samples, in-process " << local_s * 1e3 << " ms\n";

  auto identical = [&](const NetlistMonteCarlo::Result& got) {
    if (got.circuit_samples.size() != ref.circuit_samples.size() ||
        got.nets.size() != ref.nets.size() || got.worst_po != ref.worst_po) {
      return false;
    }
    if (std::memcmp(got.circuit_samples.data(), ref.circuit_samples.data(),
                    ref.circuit_samples.size() * sizeof(double)) != 0) {
      return false;
    }
    for (std::size_t n = 0; n < ref.nets.size(); ++n) {
      for (std::size_t e = 0; e < 2; ++e) {
        if (std::memcmp(&got.nets[n][e].moments, &ref.nets[n][e].moments,
                        sizeof(Moments)) != 0) {
          return false;
        }
      }
    }
    return true;
  };

  auto options_for = [&](unsigned workers, const char* tag) {
    dist::DistOptions opt;
    opt.mode = "mc";
    opt.workers = workers;
    opt.shards = 8;
    opt.samples = kSamples;
    opt.seed = kSeed;
    opt.bundle = spec;
    opt.workdir = (std::filesystem::temp_directory_path() /
                   ("nsdc_bench_dist_" + std::to_string(::getpid()) + "_" +
                    tag))
                      .string();
    opt.worker_binary = std::string(NSDC_TOOL_DIR) + "/nsdc_dist";
    opt.worker_threads = 1;
    opt.retry.base_delay_s = 0.01;
    opt.retry.max_delay_s = 0.05;
    opt.heartbeat_ms = 20;
    return opt;
  };

  std::ofstream json(json_path);
  perfjson::open_envelope(json, "dist_sweep");
  json << ",\n  \"design\": \"" << bundle.netlist.name() << "\",\n"
       << "  \"cells\": " << bundle.netlist.num_cells() << ",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"in_process_seconds\": " << local_s << ",\n"
       << "  \"runs\": [";
  bool first = true;
  bool all_identical = true;
  double one_worker_s = 0.0;
  for (const unsigned workers : {1u, 2u, 4u}) {
    const auto opt =
        options_for(workers, ("w" + std::to_string(workers)).c_str());
    const auto w0 = clock::now();
    const dist::DistResult res = dist::run_coordinator(opt);
    const double secs =
        std::chrono::duration<double>(clock::now() - w0).count();
    if (workers == 1) one_worker_s = secs;
    const bool same = res.complete && identical(res.mc);
    all_identical = all_identical && same;
    json << (first ? "" : ",") << "\n    {\"workers\": " << workers
         << ", \"seconds\": " << secs
         << ", \"speedup_vs_1\": " << one_worker_s / secs
         << ", \"byte_identical\": " << (same ? "true" : "false") << "}";
    first = false;
    std::cerr << "[dist-sweep] workers=" << workers << "  " << secs * 1e3
              << " ms  speedup=" << one_worker_s / secs
              << (same ? "" : "  MISMATCH") << "\n";
  }

  // Recovery overhead: SIGKILL one worker after accumulation block 2 of
  // attempt 0 (the NSDC_FAULTS plan travels to the fleet through the
  // inherited environment); the retried shard resumes from its checkpoint
  // and the merge must STILL be byte-identical.
  ::setenv("NSDC_FAULTS", "dist.worker.kill@2=throw", 1);
  const auto kopt = options_for(2, "kill");
  const auto k0 = clock::now();
  const dist::DistResult killed = dist::run_coordinator(kopt);
  const double killed_s =
      std::chrono::duration<double>(clock::now() - k0).count();
  ::unsetenv("NSDC_FAULTS");
  const bool killed_same = killed.complete && identical(killed.mc);
  all_identical = all_identical && killed_same;
  json << "\n  ],\n  \"recovery\": {\"workers\": 2"
       << ", \"seconds\": " << killed_s
       << ", \"workers_lost\": " << killed.workers_lost
       << ", \"shard_retries\": " << killed.shard_retries
       << ", \"byte_identical\": " << (killed_same ? "true" : "false")
       << "}\n}\n";
  std::cerr << "[dist-sweep] recovery (1 SIGKILL): " << killed_s * 1e3
            << " ms, lost=" << killed.workers_lost
            << " retries=" << killed.shard_retries
            << (killed_same ? "" : "  MISMATCH") << "\n"
            << "[dist-sweep] wrote " << json_path << "\n";
  if (!all_identical) {
    std::cerr << "[dist-sweep] ERROR: a distributed merge diverged from "
                 "the in-process reference\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nsdc

int main(int argc, char** argv) {
  bool sta_scaling = true;
  bool netmc_scaling = true;
  bool incremental_scaling = true;
  bool checkpoint_perf = true;
  bool ssta_sweep = true;
  bool analysis_perf = true;
  bool flatgraph_sweep = true;
  bool serve_perf = true;
  bool dist_sweep = true;
  std::string json_path = "sta_parallel_perf.json";
  std::string netmc_json_path = "netmc_parallel_perf.json";
  std::string incremental_json_path = "incremental_sta_perf.json";
  std::string checkpoint_json_path = "netmc_checkpoint_perf.json";
  std::string ssta_json_path = "ssta_analytic_perf.json";
  std::string analysis_json_path = "analysis_perf.json";
  std::string flatgraph_json_path = "flatgraph_perf.json";
  std::string serve_json_path = "serve_perf.json";
  std::string dist_json_path = "dist_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no_sta_scaling") == 0) {
      sta_scaling = false;
      argv[i--] = argv[--argc];  // hide from google-benchmark, re-examine slot
    } else if (std::strcmp(argv[i], "--no_netmc_scaling") == 0) {
      netmc_scaling = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_incremental_scaling") == 0) {
      incremental_scaling = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_checkpoint_perf") == 0) {
      checkpoint_perf = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_ssta_sweep") == 0) {
      ssta_sweep = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_analysis_perf") == 0) {
      analysis_perf = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_flatgraph_sweep") == 0) {
      flatgraph_sweep = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_serve_perf") == 0) {
      serve_perf = false;
      argv[i--] = argv[--argc];
    } else if (std::strcmp(argv[i], "--no_dist_sweep") == 0) {
      dist_sweep = false;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--dist_json=", 12) == 0) {
      dist_json_path = argv[i] + 12;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--serve_json=", 13) == 0) {
      serve_json_path = argv[i] + 13;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--flatgraph_json=", 17) == 0) {
      flatgraph_json_path = argv[i] + 17;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--analysis_json=", 16) == 0) {
      analysis_json_path = argv[i] + 16;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--ssta_json=", 12) == 0) {
      ssta_json_path = argv[i] + 12;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--sta_json=", 11) == 0) {
      json_path = argv[i] + 11;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--netmc_json=", 13) == 0) {
      netmc_json_path = argv[i] + 13;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--incremental_json=", 19) == 0) {
      incremental_json_path = argv[i] + 19;
      argv[i--] = argv[--argc];
    } else if (std::strncmp(argv[i], "--checkpoint_json=", 18) == 0) {
      checkpoint_json_path = argv[i] + 18;
      argv[i--] = argv[--argc];
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  int rc = 0;
  if (sta_scaling) rc |= nsdc::run_sta_scaling(json_path);
  if (netmc_scaling) rc |= nsdc::run_netmc_scaling(netmc_json_path);
  if (incremental_scaling) {
    rc |= nsdc::run_incremental_scaling(incremental_json_path);
  }
  if (checkpoint_perf) rc |= nsdc::run_checkpoint_perf(checkpoint_json_path);
  if (ssta_sweep) rc |= nsdc::run_ssta_sweep(ssta_json_path);
  if (analysis_perf) rc |= nsdc::run_analysis_perf(analysis_json_path);
  if (flatgraph_sweep) rc |= nsdc::run_flatgraph_sweep(flatgraph_json_path);
  if (serve_perf) rc |= nsdc::run_serve_perf(serve_json_path);
  if (dist_sweep) rc |= nsdc::run_dist_sweep(dist_json_path);
  return rc;
}
