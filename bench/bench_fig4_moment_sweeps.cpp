// Fig. 4 reproduction: the first four moments of the INVx1 delay
// distribution versus input slew (at fixed load) and versus output load
// (at fixed slew). Paper observations: mu and sigma grow near-linearly;
// gamma and kappa vary non-monotonically (hence the cubic calibration of
// Eq. 3).
#include "common.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 4 — INVx1 delay moments vs operating condition",
               "Purple curve analog: slew sweep @ 0.4 fF; blue curve analog: "
               "load sweep @ ~10 ps input slew. VDD = 0.6 V.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CellType& inv = cells.by_name("INVx1");
  CharConfig cfg;
  cfg.seed = 0xF164ULL;
  const CellCharacterizer ch(tech, cfg);
  const int samples = scaled_samples(1500, 10000);

  Table ts({"input slew (ps)", "mu (ps)", "sigma (ps)", "skewness",
            "ex.kurtosis"});
  for (double target : {10e-12, 40e-12, 90e-12, 150e-12, 220e-12, 300e-12}) {
    const auto shape = ch.calibrate_shape(inv, 0, true, target);
    const auto stats = ch.run_condition(inv, 0, true, shape.actual_slew,
                                        0.4e-15, samples, false, &shape);
    ts.add_row_numeric(format_fixed(to_ps(shape.actual_slew), 1),
                       {to_ps(stats.moments.mu), to_ps(stats.moments.sigma),
                        stats.moments.gamma, stats.moments.kappa},
                       3);
  }
  std::cout << "slew sweep (C = 0.4 fF):\n";
  ts.print(std::cout);
  ts.save_csv("fig4_slew_sweep.csv");

  Table tc({"load (fF)", "mu (ps)", "sigma (ps)", "skewness", "ex.kurtosis"});
  const auto shape_ref = ch.calibrate_shape(inv, 0, true, 10e-12);
  for (double load : {0.1e-15, 0.4e-15, 1.0e-15, 2.0e-15, 4.0e-15, 6.0e-15}) {
    const auto stats = ch.run_condition(inv, 0, true, shape_ref.actual_slew,
                                        load, samples, false, &shape_ref);
    tc.add_row_numeric(format_fixed(to_ff(load), 1),
                       {to_ps(stats.moments.mu), to_ps(stats.moments.sigma),
                        stats.moments.gamma, stats.moments.kappa},
                       3);
  }
  std::cout << "\nload sweep (S ~= 10 ps):\n";
  tc.print(std::cout);
  tc.save_csv("fig4_load_sweep.csv");

  std::cout << "\nPaper shape check: mu and sigma rise steadily with both "
               "axes; gamma/kappa drift non-monotonically over a sub-unit "
               "range, motivating the cubic interpolation of Eq. 3.\n";
  return 0;
}
