// Fig. 11 reproduction: per-wire +3-sigma delay on the critical path of
// C432 — the N-sigma wire model vs the Elmore metric, with stage-resolved
// Monte Carlo as reference. The paper's point: Elmore (no variability)
// undershoots every wire's +3s, while the calibrated model tracks it.
#include "baselines/mc_reference.hpp"
#include "common.hpp"
#include "core/pathdelay.hpp"
#include "netlist/designgen.hpp"
#include "sta/annotate.hpp"
#include "sta/timer.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 11 — +3s delay of each wire on the C432 critical path",
               "Model (Eq. 9) vs Elmore vs stage-resolved Monte Carlo.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const CharLib charlib = shared_charlib(tech, cells);
  const NSigmaTimer timer(charlib, cells, tech);

  GateNetlist nl = generate_iscas_like("C432", cells);
  finalize_design(nl, cells, tech);
  const ParasiticDb spef = generate_parasitics(nl, tech);
  const auto analysis = timer.analyze(nl, spef);
  std::cout << "C432-like netlist: " << nl.num_cells() << " cells, "
            << nl.num_nets() << " nets; critical path has "
            << analysis.critical_path.num_stages() << " stages.\n\n";

  PathMcConfig mcc;
  mcc.samples = scaled_samples(600, 3000);
  mcc.seed = 0xF1611ULL;
  const PathMonteCarlo mc(tech);
  const auto ref = mc.run(analysis.critical_path, mcc);

  const PathDelayCalculator calc(timer.cell_model(), timer.wire_model());
  const auto stages = calc.breakdown(analysis.critical_path);

  Table t({"wire", "driver", "load", "Elmore (ps)", "MC +3s (ps)",
           "ours +3s (ps)", "ours err%", "Elmore err%"});
  double sum_ours = 0.0, sum_elm = 0.0;
  int count = 0;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& st = analysis.critical_path.stages[s];
    if (!st.has_wire() || ref.stage_wire_quantiles[s][6] <= 0.0) continue;
    const double mc_p3 = ref.stage_wire_quantiles[s][6];
    const double ours_p3 = stages[s].wire[6];
    const double e_ours = pct_err(ours_p3, mc_p3);
    const double e_elm = pct_err(stages[s].elmore, mc_p3);
    t.add_row({"Wire" + std::to_string(count + 1), st.cell->name(),
               st.load_cell.empty() ? "PO" : st.load_cell,
               format_fixed(to_ps(stages[s].elmore), 2),
               format_fixed(to_ps(mc_p3), 2), format_fixed(to_ps(ours_p3), 2),
               format_fixed(e_ours, 2), format_fixed(e_elm, 2)});
    sum_ours += std::abs(e_ours);
    sum_elm += std::abs(e_elm);
    ++count;
  }
  t.print(std::cout);
  t.save_csv("fig11_c432_wires.csv");

  if (count > 0) {
    std::cout << "\naverage |err|: ours " << format_fixed(sum_ours / count, 2)
              << "%  vs  Elmore " << format_fixed(sum_elm / count, 2) << "%\n";
  }
  std::cout << "Paper shape check: the Elmore column sits consistently "
               "below MC +3s (no variability margin); the N-sigma column "
               "tracks it within a few tens of percent of the gap.\n";
  return 0;
}
