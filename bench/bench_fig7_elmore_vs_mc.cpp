// Fig. 7 reproduction: the wire delay distribution of an RC net between a
// driver and a load cell, compared against the Elmore (and D2M) point
// metrics. The paper's observation: the distribution is asymmetric and the
// 99.86% quantile sits far above Elmore, so a single first-moment metric
// cannot cover the tail.
#include "common.hpp"
#include "parasitics/wiregen.hpp"
#include "pdk/varmodel.hpp"
#include "liberty/stagesim.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"

using namespace nsdc;
using namespace nsdc::bench;

int main() {
  print_header("Fig. 7 — Elmore vs Monte-Carlo wire delay distribution",
               "150 um net, INVx2 driver, INVx2 load, VDD = 0.6 V.");

  const TechParams tech = TechParams::nominal28();
  const CellLibrary cells = CellLibrary::standard();
  const WireGenerator gen(tech);
  RcTree tree = gen.line(150.0, 10, "Z");
  const CellType& driver = cells.by_name("INVx2");
  const CellType& load = cells.by_name("INVx2");

  // Reference metrics on the loaded tree.
  RcTree loaded = tree;
  const int sink = loaded.sink_node("Z");
  loaded.add_cap(sink, load.input_cap(tech, 0));
  const double elmore = loaded.elmore(sink);
  const double d2m = loaded.d2m(sink);

  CharConfig cfg;
  cfg.seed = 0xF167ULL;
  const CellCharacterizer ch(tech, cfg);
  const int samples = scaled_samples(4000, 10000);
  const auto obs = ch.run_wire_observation(driver, load, tree, 0, samples);

  Table t({"metric", "value (ps)", "vs MC mean (%)", "vs MC +3s (%)"});
  t.add_row({"Elmore (Eq. 4)", format_fixed(to_ps(elmore), 2),
             format_fixed(pct_err(elmore, obs.wire_moments.mu), 2),
             format_fixed(pct_err(elmore, obs.quantiles[6]), 2)});
  t.add_row({"D2M", format_fixed(to_ps(d2m), 2),
             format_fixed(pct_err(d2m, obs.wire_moments.mu), 2),
             format_fixed(pct_err(d2m, obs.quantiles[6]), 2)});
  t.add_row({"MC mean", format_fixed(to_ps(obs.wire_moments.mu), 2), "0.00",
             format_fixed(pct_err(obs.wire_moments.mu, obs.quantiles[6]), 2)});
  t.add_row({"MC -3s (0.14%)", format_fixed(to_ps(obs.quantiles[0]), 2), "-", "-"});
  t.add_row({"MC median", format_fixed(to_ps(obs.quantiles[3]), 2), "-", "-"});
  t.add_row({"MC +3s (99.86%)", format_fixed(to_ps(obs.quantiles[6]), 2), "-", "-"});
  t.print(std::cout);
  t.save_csv("fig7_elmore_vs_mc.csv");

  std::cout << "\nwire delay sigma/mu = " << format_fixed(obs.variability(), 4)
            << ", skewness = " << format_fixed(obs.wire_moments.gamma, 3)
            << "\n";
  std::cout << "\nPaper shape check: Elmore tracks the MC MEAN but sits "
            << format_fixed(100.0 * (obs.quantiles[6] - elmore) / elmore, 1)
            << "% below the +3s quantile — the gap the N-sigma wire model "
               "(Eq. 9) closes.\n";
  return 0;
}
